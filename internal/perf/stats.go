package perf

import "sort"

// MetricSummary reduces the repeated observations of one (benchmark,
// unit) to order statistics. With -count=1 all of Min/Median/Mean/Max
// coincide and Spread is 0.
type MetricSummary struct {
	Unit string `json:"unit"`
	// N is the number of observations behind the statistics.
	N      int     `json:"n"`
	Min    float64 `json:"min"`
	Median float64 `json:"median"`
	Mean   float64 `json:"mean"`
	Max    float64 `json:"max"`
	// Spread is (Max−Min)/Median — the run-to-run noise estimate the
	// regression comparator's threshold should dominate. Zero when the
	// median is zero.
	Spread float64 `json:"spread"`
}

// BenchSummary is the per-benchmark aggregate over repeated runs.
type BenchSummary struct {
	Name  string `json:"name"`
	Procs int    `json:"procs"`
	// Runs counts the result lines aggregated (the -count value).
	Runs int `json:"runs"`
	// Metrics is sorted by unit name.
	Metrics []MetricSummary `json:"metrics"`
}

// Metric returns the summary for one unit and whether it exists.
func (b BenchSummary) Metric(unit string) (MetricSummary, bool) {
	for _, m := range b.Metrics {
		if m.Unit == unit {
			return m, true
		}
	}
	return MetricSummary{}, false
}

// Summarize groups repeated results by (name, procs) and reduces every
// unit to summary statistics. The output is sorted by name (then procs),
// with each benchmark's metrics sorted by unit, so identical inputs
// produce identical snapshots.
func Summarize(results []BenchResult) []BenchSummary {
	type key struct {
		name  string
		procs int
	}
	byBench := make(map[key]map[string][]float64)
	runs := make(map[key]int)
	var order []key
	for _, r := range results {
		k := key{r.Name, r.Procs}
		if _, ok := byBench[k]; !ok {
			byBench[k] = make(map[string][]float64)
			order = append(order, k)
		}
		runs[k]++
		for _, m := range r.Metrics {
			byBench[k][m.Unit] = append(byBench[k][m.Unit], m.Value)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].name != order[j].name {
			return order[i].name < order[j].name
		}
		return order[i].procs < order[j].procs
	})

	out := make([]BenchSummary, 0, len(order))
	for _, k := range order {
		bs := BenchSummary{Name: k.name, Procs: k.procs, Runs: runs[k]}
		units := make([]string, 0, len(byBench[k]))
		for unit := range byBench[k] {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			bs.Metrics = append(bs.Metrics, summarizeValues(unit, byBench[k][unit]))
		}
		out = append(out, bs)
	}
	return out
}

func summarizeValues(unit string, vals []float64) MetricSummary {
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	ms := MetricSummary{Unit: unit, N: len(sorted)}
	if len(sorted) == 0 {
		return ms
	}
	ms.Min = sorted[0]
	ms.Max = sorted[len(sorted)-1]
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		ms.Median = sorted[mid]
	} else {
		ms.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	ms.Mean = sum / float64(len(sorted))
	if ms.Median > 0 {
		ms.Spread = (ms.Max - ms.Min) / ms.Median
	}
	return ms
}
