package perf

import (
	"reflect"
	"strings"
	"testing"
)

// TestDegradedScorecardQ3 runs the smallest real fault-injection sweep:
// worst-case link failures mid-reduction at q=3. The multi-tree
// embeddings must recover with correct outputs and a post-recovery
// bandwidth near the Degrade prediction; the single tree must abort.
func TestDegradedScorecardQ3(t *testing.T) {
	cfg := DefaultDegradedConfig()
	cfg.Q = 3
	cfg.M = 6144
	cfg.FailAt = 800
	points, err := DegradedScorecard(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantEmb := []string{"single-tree", "low-depth", "hamiltonian"}
	if len(points) != len(wantEmb) {
		t.Fatalf("%d points, want %d: %+v", len(points), len(wantEmb), points)
	}
	for i, pt := range points {
		if pt.Embedding != wantEmb[i] {
			t.Errorf("point %d embedding %q, want %q", i, pt.Embedding, wantEmb[i])
		}
	}
	if !points[0].AllTreesLost {
		t.Error("single-tree point did not record AllTreesLost")
	}
	for _, pt := range points[1:] {
		if pt.AllTreesLost {
			t.Errorf("%s: lost all trees on a single failure", pt.Embedding)
			continue
		}
		if !pt.OutputsOK {
			t.Errorf("%s: fault-injected outputs wrong", pt.Embedding)
		}
		if pt.RecoveryCycle <= pt.FailAt {
			t.Errorf("%s: recovery at %d, not after the fault at %d",
				pt.Embedding, pt.RecoveryCycle, pt.FailAt)
		}
		if len(pt.DeadTrees) == 0 || pt.Reissued <= 0 || pt.DroppedFlits <= 0 {
			t.Errorf("%s: recovery telemetry empty: %+v", pt.Embedding, pt)
		}
		if !pt.Within {
			t.Errorf("%s: post-recovery %.3f vs predicted %.3f (%.1f%%) outside ±%.0f%%",
				pt.Embedding, pt.MeasuredBW, pt.PredictedBW, 100*pt.RelErr, 100*cfg.Tolerance)
		}
	}
	if fails := DegradedFailures(points); len(fails) != 0 {
		t.Errorf("unexpected degraded failures: %v", fails)
	}
}

// TestDegradedScorecardDeterministic: same config, identical points.
func TestDegradedScorecardDeterministic(t *testing.T) {
	cfg := DefaultDegradedConfig()
	cfg.Q = 3
	cfg.M = 2048
	cfg.FailAt = 300
	cfg.Tolerance = 0.5 // small m; only determinism matters here
	a, err := DegradedScorecard(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DegradedScorecard(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Errorf("point %d differs between runs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestDegradedConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*DegradedConfig)
		sub  string
	}{
		{"bad m", func(c *DegradedConfig) { c.M = 0 }, "must be positive"},
		{"bad fail-at", func(c *DegradedConfig) { c.FailAt = 0 }, "fail-at"},
		{"bad tolerance", func(c *DegradedConfig) { c.Tolerance = 1.0 }, "out of [0, 1)"},
		{"bad q", func(c *DegradedConfig) { c.Q = 6 }, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := DefaultDegradedConfig()
			c.mut(&cfg)
			_, err := DegradedScorecard(cfg)
			if err == nil {
				t.Fatal("no error")
			}
			if c.sub != "" && !strings.Contains(err.Error(), c.sub) {
				t.Errorf("error %q does not mention %q", err, c.sub)
			}
		})
	}
}

// TestDegradedFailures checks the gate on fabricated points.
func TestDegradedFailures(t *testing.T) {
	points := []DegradedPoint{
		{Embedding: "aborted", AllTreesLost: true},
		{Embedding: "ok", RecoveryCycle: 100, PredictedBW: 2, MeasuredBW: 1.95,
			RelErr: -0.025, Within: true, OutputsOK: true},
		{Embedding: "drifted", RecoveryCycle: 100, PredictedBW: 2, MeasuredBW: 1.0,
			RelErr: -0.5, Within: false, OutputsOK: true},
		{Embedding: "silent", RecoveryCycle: 0, PredictedBW: 2, MeasuredBW: 0,
			RelErr: -1, Within: false, OutputsOK: false},
	}
	fails := DegradedFailures(points)
	if len(fails) != 4 {
		t.Fatalf("%d failures, want 4 (drift + no-recovery + wrong outputs + drift): %v", len(fails), fails)
	}
	if got := DegradedFailures(points[:2]); len(got) != 0 {
		t.Errorf("healthy points reported failures: %v", got)
	}
}
