package perf

import "testing"

// snap builds a minimal snapshot whose benchmarks each carry a single
// observation per unit (so median == value).
func snap(label string, benches ...BenchSummary) *Snapshot {
	return &Snapshot{Schema: SnapshotSchema, Label: label, Kind: KindBench, Benchmarks: benches}
}

func bench(name string, units map[string]float64) BenchSummary {
	var results []BenchResult
	r := BenchResult{Name: name, Procs: 1, Iterations: 1}
	for unit, v := range units {
		r.Metrics = append(r.Metrics, Measurement{Value: v, Unit: unit})
	}
	results = append(results, r)
	return Summarize(results)[0]
}

// TestCompare is the satellite table: every delta kind plus the
// exit-gating semantics, one scenario per row.
func TestCompare(t *testing.T) {
	const threshold = 0.05
	cases := []struct {
		name     string
		old, new *Snapshot
		wantKind DeltaKind
		wantUnit string
		wantOK   bool
	}{
		{
			name:     "regression beyond threshold gates",
			old:      snap("a", bench("BenchmarkX", map[string]float64{"ns/op": 100})),
			new:      snap("b", bench("BenchmarkX", map[string]float64{"ns/op": 120})),
			wantKind: DeltaRegression, wantUnit: "ns/op", wantOK: false,
		},
		{
			name:     "improvement beyond threshold",
			old:      snap("a", bench("BenchmarkX", map[string]float64{"ns/op": 100})),
			new:      snap("b", bench("BenchmarkX", map[string]float64{"ns/op": 80})),
			wantKind: DeltaImprovement, wantUnit: "ns/op", wantOK: true,
		},
		{
			name:     "within noise",
			old:      snap("a", bench("BenchmarkX", map[string]float64{"ns/op": 100})),
			new:      snap("b", bench("BenchmarkX", map[string]float64{"ns/op": 103})),
			wantKind: DeltaWithinNoise, wantUnit: "ns/op", wantOK: true,
		},
		{
			name:     "new benchmark never gates",
			old:      snap("a"),
			new:      snap("b", bench("BenchmarkNew", map[string]float64{"ns/op": 50})),
			wantKind: DeltaAdded, wantOK: true,
		},
		{
			name:     "removed benchmark never gates",
			old:      snap("a", bench("BenchmarkGone", map[string]float64{"ns/op": 50})),
			new:      snap("b"),
			wantKind: DeltaRemoved, wantOK: true,
		},
		{
			name:     "MB/s drop is a regression but does not gate",
			old:      snap("a", bench("BenchmarkX", map[string]float64{"MB/s": 10})),
			new:      snap("b", bench("BenchmarkX", map[string]float64{"MB/s": 5})),
			wantKind: DeltaRegression, wantUnit: "MB/s", wantOK: true,
		},
		{
			name:     "custom unit movement is informational",
			old:      snap("a", bench("BenchmarkX", map[string]float64{"elem/cycle": 3.4})),
			new:      snap("b", bench("BenchmarkX", map[string]float64{"elem/cycle": 5.1})),
			wantKind: DeltaChanged, wantUnit: "elem/cycle", wantOK: true,
		},
		{
			name:     "allocs/op regression gates",
			old:      snap("a", bench("BenchmarkX", map[string]float64{"allocs/op": 10})),
			new:      snap("b", bench("BenchmarkX", map[string]float64{"allocs/op": 20})),
			wantKind: DeltaRegression, wantUnit: "allocs/op", wantOK: false,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cmp := Compare(c.old, c.new, threshold)
			if len(cmp.Deltas) != 1 {
				t.Fatalf("%d deltas, want 1: %+v", len(cmp.Deltas), cmp.Deltas)
			}
			d := cmp.Deltas[0]
			if d.Kind != c.wantKind {
				t.Errorf("kind = %v, want %v", d.Kind, c.wantKind)
			}
			if d.KindName != d.Kind.String() {
				t.Errorf("KindName %q does not mirror Kind %v", d.KindName, d.Kind)
			}
			if c.wantUnit != "" && d.Unit != c.wantUnit {
				t.Errorf("unit = %q, want %q", d.Unit, c.wantUnit)
			}
			if cmp.OK() != c.wantOK {
				t.Errorf("OK() = %v (regressions=%d), want %v", cmp.OK(), cmp.Regressions, c.wantOK)
			}
		})
	}
}

// TestCompareMixedSnapshot exercises counting and ordering with several
// benchmarks moving in different directions at once.
func TestCompareMixedSnapshot(t *testing.T) {
	old := snap("base",
		bench("BenchmarkA", map[string]float64{"ns/op": 100, "allocs/op": 10}),
		bench("BenchmarkB", map[string]float64{"ns/op": 200}),
		bench("BenchmarkGone", map[string]float64{"ns/op": 50}),
	)
	new := snap("head",
		bench("BenchmarkA", map[string]float64{"ns/op": 150, "allocs/op": 10}),
		bench("BenchmarkB", map[string]float64{"ns/op": 100}),
		bench("BenchmarkNew", map[string]float64{"ns/op": 60}),
	)
	cmp := Compare(old, new, 0.05)
	if cmp.Regressions != 1 || cmp.Improvements != 1 || cmp.Added != 1 || cmp.Removed != 1 {
		t.Errorf("counts reg=%d imp=%d add=%d rem=%d, want 1/1/1/1",
			cmp.Regressions, cmp.Improvements, cmp.Added, cmp.Removed)
	}
	if cmp.OK() {
		t.Error("OK() with a gating regression present")
	}
	// Deltas must be sorted by name: A (×2 units), B, Gone, New.
	wantNames := []string{"BenchmarkA", "BenchmarkA", "BenchmarkB", "BenchmarkGone", "BenchmarkNew"}
	if len(cmp.Deltas) != len(wantNames) {
		t.Fatalf("%d deltas, want %d: %+v", len(cmp.Deltas), len(wantNames), cmp.Deltas)
	}
	for i, w := range wantNames {
		if cmp.Deltas[i].Name != w {
			t.Errorf("deltas[%d].Name = %q, want %q", i, cmp.Deltas[i].Name, w)
		}
	}
}

// TestCompareIdentical is the CI fast path: same snapshot twice must be
// all within-noise and OK.
func TestCompareIdentical(t *testing.T) {
	s := snap("same",
		bench("BenchmarkA", map[string]float64{"ns/op": 100, "B/op": 64, "allocs/op": 3}),
		bench("BenchmarkB", map[string]float64{"ns/op": 200, "MB/s": 12}),
	)
	cmp := Compare(s, s, 0.05)
	if !cmp.OK() {
		t.Errorf("identical snapshots not OK: %d regressions", cmp.Regressions)
	}
	for _, d := range cmp.Deltas {
		if d.Kind != DeltaWithinNoise {
			t.Errorf("%s %s: kind %v, want within-noise", d.Name, d.Unit, d.Kind)
		}
		if d.Rel != 0 {
			t.Errorf("%s %s: rel %v, want 0", d.Name, d.Unit, d.Rel)
		}
	}
}

func TestDeltaKindString(t *testing.T) {
	kinds := map[DeltaKind]string{
		DeltaWithinNoise: "within-noise",
		DeltaImprovement: "improvement",
		DeltaRegression:  "regression",
		DeltaAdded:       "added",
		DeltaRemoved:     "removed",
		DeltaChanged:     "changed",
		DeltaKind(99):    "DeltaKind(99)",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}
