package perf

import (
	"fmt"
	"io"
	"strings"
)

// DefaultMaxOverhead is the telemetry budget: sampling may cost at most
// this fraction of the unsampled hot loop's median ns/op.
const DefaultMaxOverhead = 0.05

// OverheadPair is one sampled benchmark matched with its unsampled twin.
type OverheadPair struct {
	// Name is the shared sub-benchmark path (e.g. "HotLoop/q=11/lowdepth");
	// the sampled series carries a "Sampled" suffix on the first segment.
	Name  string `json:"name"`
	Procs int    `json:"procs"`
	// BaseNs and SampledNs are the median ns/op of each series.
	BaseNs    float64 `json:"base_ns"`
	SampledNs float64 `json:"sampled_ns"`
	// Overhead is SampledNs/BaseNs − 1 (negative when sampling measured
	// faster — pure machine noise).
	Overhead float64 `json:"overhead"`
}

// TelemetryOverhead pairs every benchmark whose first path segment ends
// in "Sampled" with the suffix-stripped counterpart from the same
// snapshot (same remaining path, same Procs) and reports the median
// ns/op ratio. Pairing within one snapshot is deliberate: both series
// ran back to back on the same machine, so drift between benchmarking
// sessions — which on a noisy box easily exceeds the 5% budget — cancels
// out of the ratio.
func TelemetryOverhead(s *Snapshot) []OverheadPair {
	type key struct {
		name  string
		procs int
	}
	base := make(map[key]float64)
	for _, b := range s.Benchmarks {
		if baseNameOf(b.Name) != "" {
			continue // a sampled series is never a base
		}
		if m, ok := b.Metric("ns/op"); ok {
			base[key{b.Name, b.Procs}] = m.Median
		}
	}
	var pairs []OverheadPair
	for _, b := range s.Benchmarks {
		name := baseNameOf(b.Name)
		if name == "" {
			continue
		}
		m, ok := b.Metric("ns/op")
		if !ok {
			continue
		}
		bn, ok := base[key{name, b.Procs}]
		if !ok || bn <= 0 {
			continue
		}
		pairs = append(pairs, OverheadPair{
			Name: name, Procs: b.Procs,
			BaseNs: bn, SampledNs: m.Median,
			Overhead: m.Median/bn - 1,
		})
	}
	// Benchmarks is sorted by (name, procs), so pairs inherit a
	// deterministic order.
	return pairs
}

// baseNameOf strips the "Sampled" suffix from the first path segment of
// a sampled benchmark name ("HotLoopSampled/q=11/x" → "HotLoop/q=11/x").
// It returns "" when the name is not a sampled series.
func baseNameOf(name string) string {
	head := name
	rest := ""
	if i := strings.IndexByte(name, '/'); i >= 0 {
		head, rest = name[:i], name[i:]
	}
	const suffix = "Sampled"
	if !strings.HasSuffix(head, suffix) || len(head) == len(suffix) {
		return ""
	}
	return head[:len(head)-len(suffix)] + rest
}

// OverheadFailures lists every pair above the budget. maxOverhead ≤ 0
// uses DefaultMaxOverhead.
func OverheadFailures(pairs []OverheadPair, maxOverhead float64) []string {
	if maxOverhead <= 0 {
		maxOverhead = DefaultMaxOverhead
	}
	var fails []string
	for _, p := range pairs {
		if p.Overhead > maxOverhead {
			fails = append(fails, fmt.Sprintf(
				"%s (procs=%d): sampling overhead %.1f%% exceeds the %.1f%% budget (%.0f → %.0f ns/op)",
				p.Name, p.Procs, p.Overhead*100, maxOverhead*100, p.BaseNs, p.SampledNs))
		}
	}
	return fails
}

// WriteOverheadMarkdown renders the pairing table.
func WriteOverheadMarkdown(w io.Writer, pairs []OverheadPair, maxOverhead float64) error {
	if maxOverhead <= 0 {
		maxOverhead = DefaultMaxOverhead
	}
	ew := &mdWriter{w: w}
	ew.printf("# Telemetry overhead (budget %.1f%%)\n\n", maxOverhead*100)
	if len(pairs) == 0 {
		ew.printf("No base↔sampled benchmark pairs found.\n")
		return ew.err
	}
	ew.printf("| benchmark | base ns/op | sampled ns/op | overhead | verdict |\n|---|---|---|---|---|\n")
	for _, p := range pairs {
		verdict := "ok"
		if p.Overhead > maxOverhead {
			verdict = "**OVER BUDGET**"
		}
		ew.printf("| %s | %.0f | %.0f | %+.1f%% | %s |\n",
			p.Name, p.BaseNs, p.SampledNs, p.Overhead*100, verdict)
	}
	return ew.err
}

// mdWriter latches the first write error (same idiom as tsdb's renderer).
type mdWriter struct {
	w   io.Writer
	err error
}

func (e *mdWriter) printf(format string, args ...interface{}) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
