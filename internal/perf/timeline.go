package perf

import (
	"fmt"
	"io"

	"polarfly/internal/bandwidth"
	"polarfly/internal/core"
	"polarfly/internal/faults"
	"polarfly/internal/netsim"
	"polarfly/internal/obsv"
	"polarfly/internal/parrun"
	"polarfly/internal/tsdb"
	"polarfly/internal/workload"
)

// KindTimeline is the Snapshot.Kind of a streaming-telemetry timeline
// sweep (see TimelineConfig).
const KindTimeline = "timeline"

// TimelineConfig parameterises the streaming-telemetry sweep: one
// simulated Allreduce per embedding of one design point, with the tsdb
// sampler and analyzer attached, gated on the bandwidth bounds, the
// fixed-memory footprint, and — when a fault is injected — the analyzer
// reproducing the obsv trace's ground-truth fault timing exactly.
type TimelineConfig struct {
	// Q is the PolarFly order and M the Allreduce vector length.
	Q int `json:"q"`
	M int `json:"m"`
	// LinkLatency and VCDepth configure the fabric (latency-1 defaults
	// keep the fill transient small, like the scorecard).
	LinkLatency int `json:"link_latency"`
	VCDepth     int `json:"vc_depth"`
	// SampleEvery, Windows, Levels, and Factor size the tsdb sampler.
	SampleEvery int `json:"sample_every"`
	Windows     int `json:"windows"`
	Levels      int `json:"levels"`
	Factor      int `json:"factor"`
	// Seed drives the workload and the Hamiltonian search.
	Seed int64 `json:"seed"`
	// Tolerance widens the analyzer's bound checks.
	Tolerance float64 `json:"tolerance"`
	// MaxBytes caps the sampler footprint per run; 0 disables the gate.
	MaxBytes int `json:"max_bytes,omitempty"`
	// FaultAt, when > 0, fails the first edge of tree 0 at that cycle on
	// every multi-tree embedding (the single-tree baseline stays
	// fault-free — a link failure kills its only tree) and cross-checks
	// the analyzer's telemetry-derived events against the obsv trace.
	FaultAt int `json:"fault_at,omitempty"`
	// Parallel is the parrun pool size; excluded from snapshots because
	// the ordered commit makes output independent of it.
	Parallel int `json:"-"`
	// Engine selects the netsim advance strategy; engines are
	// byte-identical, so it is excluded from snapshots.
	Engine netsim.Engine `json:"-"`
}

// DefaultTimelineConfig mirrors the scorecard calibration: latency-1
// links and a vector long enough that steady state dominates, sampled at
// the CLI's default 64-cycle window.
func DefaultTimelineConfig() TimelineConfig {
	return TimelineConfig{
		Q: 7, M: 16384, LinkLatency: 1, VCDepth: 4,
		SampleEvery: 64, Windows: 64, Levels: 3, Factor: 8,
		Seed: core.DefaultSeed, Tolerance: 0.10,
	}
}

// timelineFloor is the embedding's proven aggregate-bandwidth floor.
func timelineFloor(q int, kind core.EmbeddingKind, e *core.Embedding) float64 {
	switch kind {
	case core.SingleTree:
		return 1.0
	case core.LowDepth:
		return bandwidth.LowDepthBound(q, 1.0)
	case core.Hamiltonian:
		return bandwidth.HamiltonianBound(len(e.Forest), 1.0)
	default: // DepthTwo has no proven floor
		return 0
	}
}

// Timeline sweeps every embedding of the design point through a sampled
// simulation and returns one tsdb snapshot per embedding, in sweepKinds
// order. Each run is independent — sampler, analyzer, and collector are
// all job-local — so cfg.Parallel of them run on a parrun pool with
// ordered commit keeping the result byte-identical to a serial sweep.
func Timeline(cfg TimelineConfig) ([]*tsdb.Snapshot, error) {
	if cfg.M <= 0 {
		return nil, fmt.Errorf("perf: timeline vector length must be positive, got %d", cfg.M)
	}
	if cfg.SampleEvery < 1 {
		return nil, fmt.Errorf("perf: timeline needs SampleEvery ≥ 1, got %d", cfg.SampleEvery)
	}
	kinds := sweepKinds(cfg.Q)
	return parrun.Map(cfg.Parallel, len(kinds), func(i int) (*tsdb.Snapshot, error) {
		return timelineRun(cfg, kinds[i])
	})
}

// timelineRun simulates one embedding with the telemetry stack attached.
func timelineRun(cfg TimelineConfig, kind core.EmbeddingKind) (*tsdb.Snapshot, error) {
	inst, err := core.NewInstance(cfg.Q)
	if err != nil {
		return nil, err
	}
	e, err := inst.Embed(kind)
	if err != nil {
		return nil, err
	}
	sampler, err := tsdb.New(tsdb.Config{SampleEvery: cfg.SampleEvery,
		Windows: cfg.Windows, Levels: cfg.Levels, Factor: cfg.Factor})
	if err != nil {
		return nil, err
	}
	faulted := cfg.FaultAt > 0 && len(e.Forest) > 1
	analyzer := tsdb.NewAnalyzer(sampler, tsdb.AnalyzerConfig{
		Tolerance: cfg.Tolerance,
		Bounds: tsdb.Bounds{
			Nodes:     inst.N(),
			Aggregate: e.Model.Aggregate,
			Optimal:   bandwidth.Optimal(cfg.Q, 1.0),
			Floor:     timelineFloor(cfg.Q, kind, e),
			FaultFree: !faulted,
		},
		Predicted: core.ModelLinkLoads(e),
	})
	runCfg := netsim.Config{LinkLatency: cfg.LinkLatency, VCDepth: cfg.VCDepth,
		SampleEvery: cfg.SampleEvery, Sample: sampler.Sample, Engine: cfg.Engine}
	var col *obsv.Collector
	if faulted {
		var u, v int
		for w, p := range e.Forest[0].Parent {
			if p >= 0 {
				u, v = w, p
				break
			}
		}
		runCfg.Faults = &faults.Plan{Faults: []faults.Fault{
			{Kind: faults.LinkDown, U: u, V: v, At: cfg.FaultAt},
		}}
		// The trace collector supplies the ground truth the analyzer's
		// telemetry-only detection is checked against.
		col = obsv.NewCollector()
		col.DisableSpans = true // Metrics-only; Chrome spans are O(flits) at q=31 scale
		col.Attach(&runCfg)
	}
	inputs := workload.Vectors(inst.N(), cfg.M, 1000, cfg.Seed)
	res, err := inst.Allreduce(e, inputs, runCfg)
	if err != nil {
		return nil, fmt.Errorf("perf: timeline q=%d %v: %w", cfg.Q, kind, err)
	}
	sn := tsdb.BuildSnapshot(sampler, analyzer, tsdb.SnapshotMeta{
		Q: cfg.Q, Kind: kind.String(), M: cfg.M, Nodes: inst.N(),
		Aggregate: e.Model.Aggregate,
		Optimal:   bandwidth.Optimal(cfg.Q, 1.0),
		Floor:     timelineFloor(cfg.Q, kind, e),
	})
	if col != nil {
		col.SetCycles(res.Cycles)
		rep := col.Report()
		sn.GroundTruth = groundTruth(sn, rep)
	}
	return sn, nil
}

// groundTruth builds the trace-side event record and checks the
// analyzer's telemetry-derived events against it: same fault cycles,
// same recovery cycles, same latency attribution — exactly.
func groundTruth(sn *tsdb.Snapshot, rep *obsv.Report) *tsdb.GroundTruth {
	gt := &tsdb.GroundTruth{Match: true}
	for _, f := range rep.Faults {
		gt.FaultCycles = append(gt.FaultCycles, f.Cycle)
	}
	for _, r := range rep.Recoveries {
		gt.RecoverCycles = append(gt.RecoverCycles, r.Cycle)
		gt.Latencies = append(gt.Latencies, r.LatencyCycles)
	}
	if len(sn.Faults) != len(gt.FaultCycles) || len(sn.Recoveries) != len(gt.RecoverCycles) {
		gt.Match = false
		return gt
	}
	for i, f := range sn.Faults {
		if f.Cycle != gt.FaultCycles[i] {
			gt.Match = false
		}
	}
	for i, r := range sn.Recoveries {
		if r.Cycle != gt.RecoverCycles[i] || r.Latency != gt.Latencies[i] {
			gt.Match = false
		}
	}
	return gt
}

// TimelineFailures lists every way the sweep violates the telemetry
// contract: a run with no points, a bound violation, a sampler footprint
// above the ceiling, or telemetry-derived fault events that disagree
// with the trace ground truth. Empty means the timeline gate passes.
func TimelineFailures(runs []*tsdb.Snapshot, cfg TimelineConfig) []string {
	var fails []string
	for _, sn := range runs {
		id := fmt.Sprintf("q=%d %s", sn.Meta.Q, sn.Meta.Kind)
		if len(sn.Points) == 0 {
			fails = append(fails, id+": timeline has no points")
			continue
		}
		if last := sn.Points[len(sn.Points)-1]; last.End != sn.Cycles {
			fails = append(fails, fmt.Sprintf("%s: timeline ends at cycle %d of %d", id, last.End, sn.Cycles))
		}
		if sn.ViolationCount > 0 {
			v := sn.Violations[0]
			fails = append(fails, fmt.Sprintf("%s: %d bound violation(s), first: %s",
				id, sn.ViolationCount, v.String()))
		}
		if cfg.MaxBytes > 0 && sn.FootprintBytes > cfg.MaxBytes {
			fails = append(fails, fmt.Sprintf("%s: sampler footprint %d bytes exceeds the %d-byte ceiling",
				id, sn.FootprintBytes, cfg.MaxBytes))
		}
		if gt := sn.GroundTruth; gt != nil && !gt.Match {
			fails = append(fails, fmt.Sprintf(
				"%s: telemetry-derived fault events diverge from trace ground truth (telemetry %d/%d, trace %d/%d)",
				id, len(sn.Faults), len(sn.Recoveries), len(gt.FaultCycles), len(gt.RecoverCycles)))
		}
	}
	return fails
}

// WriteTimelineMarkdown renders every run's phase timeline.
func WriteTimelineMarkdown(w io.Writer, s *Snapshot) error {
	if _, err := fmt.Fprintf(w, "# Telemetry timelines — %s\n\n", s.Label); err != nil {
		return err
	}
	for i, sn := range s.Timeline {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if err := sn.WriteMarkdown(w); err != nil {
			return err
		}
	}
	return nil
}
