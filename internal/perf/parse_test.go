package perf

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// -update regenerates the golden files from the current parser output:
//
//	go test ./internal/perf -run TestParseBenchGolden -update
var update = flag.Bool("update", false, "rewrite golden files")

// TestParseBenchGolden parses captured real `go test -bench -benchmem`
// output (testdata/bench_real.txt, recorded from this repository's own
// suite, including MB/s and custom elem/cycle columns) plus a captured
// failing run, and compares the full parse against JSON goldens.
func TestParseBenchGolden(t *testing.T) {
	for _, name := range []string{"bench_real", "bench_failed"} {
		t.Run(name, func(t *testing.T) {
			raw, err := os.ReadFile(filepath.Join("testdata", name+".txt"))
			if err != nil {
				t.Fatal(err)
			}
			out, err := ParseBench(bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.MarshalIndent(out, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			goldenPath := filepath.Join("testdata", name+".golden.json")
			if *update {
				if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("parse of %s.txt diverges from golden (re-run with -update if intended)\ngot:\n%s\nwant:\n%s",
					name, got, want)
			}
		})
	}
}

// TestParseBenchRealDetails spot-checks semantic fields of the real
// capture so the golden cannot silently drift into nonsense.
func TestParseBenchRealDetails(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "bench_real.txt"))
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseBench(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !out.OK() {
		t.Errorf("clean run reported failures: %v / %v", out.Failed, out.FailedPackages)
	}
	if len(out.Results) != 12 {
		t.Fatalf("%d result lines, want 12 (6 benchmarks × count=2)", len(out.Results))
	}
	if got := out.Packages; len(got) != 1 || got[0] != "polarfly" {
		t.Errorf("packages %v, want [polarfly]", got)
	}
	var ham *BenchResult
	for i := range out.Results {
		if out.Results[i].Name == "BenchmarkSimulatedAllreduce/hamiltonian" {
			ham = &out.Results[i]
			break
		}
	}
	if ham == nil {
		t.Fatal("hamiltonian sub-benchmark not parsed")
	}
	if v, ok := ham.Metric("elem/cycle"); !ok || v < 2.5 || v > 2.7 {
		t.Errorf("elem/cycle = %v (present=%v), want ≈2.586", v, ok)
	}
	if v, ok := ham.Metric("allocs/op"); !ok || v != 289979 {
		t.Errorf("allocs/op = %v (present=%v), want 289979", v, ok)
	}
	if v, ok := ham.Metric("MB/s"); !ok || v <= 0 {
		t.Errorf("MB/s = %v (present=%v), want positive", v, ok)
	}
}

// TestParseBenchFailures checks the failing capture: failed benchmarks
// (top-level and sub-benchmark) and the failed package are recorded, and
// result lines around them still parse, including the -8 GOMAXPROCS
// suffix.
func TestParseBenchFailures(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "bench_failed.txt"))
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseBench(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if out.OK() {
		t.Error("failing run reported OK")
	}
	wantFailed := []string{"BenchmarkBrokenInvariant", "BenchmarkBrokenSub/q=11-8"}
	if len(out.Failed) != len(wantFailed) {
		t.Fatalf("failed %v, want %v", out.Failed, wantFailed)
	}
	for i, w := range wantFailed {
		if out.Failed[i] != w {
			t.Errorf("failed[%d] = %q, want %q", i, out.Failed[i], w)
		}
	}
	if len(out.FailedPackages) != 1 || out.FailedPackages[0] != "polarfly/internal/netsim" {
		t.Errorf("failed packages %v, want [polarfly/internal/netsim]", out.FailedPackages)
	}
	if len(out.Results) != 3 {
		t.Fatalf("%d results, want 3", len(out.Results))
	}
	first := out.Results[0]
	if first.Name != "BenchmarkRunLowDepth/q=5" || first.Procs != 8 {
		t.Errorf("first result %q procs %d, want BenchmarkRunLowDepth/q=5 procs 8", first.Name, first.Procs)
	}
	if first.Iterations != 120 {
		t.Errorf("iterations %d, want 120", first.Iterations)
	}
}

// TestParseResultLineEdgeCases covers the line-shape corners table-style.
func TestParseResultLineEdgeCases(t *testing.T) {
	cases := []struct {
		in     string
		ok     bool
		errSub string // non-empty: expect an error containing it
		name   string
		procs  int
	}{
		{in: "BenchmarkX-4 100 5 ns/op", ok: true, name: "BenchmarkX", procs: 4},
		{in: "BenchmarkX 100 5 ns/op", ok: true, name: "BenchmarkX", procs: 1},
		{in: "BenchmarkX/sub-case-16 2 5 ns/op", ok: true, name: "BenchmarkX/sub-case", procs: 16},
		{in: "BenchmarkX logging something", ok: false},
		{in: "BenchmarkX", ok: false},
		{in: "BenchmarkX 100 5", errSub: "odd value/unit"},
		{in: "BenchmarkX 100 five ns/op", errSub: "bad metric value"},
	}
	for _, c := range cases {
		res, ok, err := parseResultLine(c.in)
		if c.errSub != "" {
			if err == nil || !strings.Contains(err.Error(), c.errSub) {
				t.Errorf("%q: err = %v, want containing %q", c.in, err, c.errSub)
			}
			continue
		}
		if err != nil {
			t.Errorf("%q: unexpected error %v", c.in, err)
			continue
		}
		if ok != c.ok {
			t.Errorf("%q: ok = %v, want %v", c.in, ok, c.ok)
			continue
		}
		if ok && (res.Name != c.name || res.Procs != c.procs) {
			t.Errorf("%q: parsed (%q, %d), want (%q, %d)", c.in, res.Name, res.Procs, c.name, c.procs)
		}
	}
}
