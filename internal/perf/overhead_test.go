package perf

import (
	"bytes"
	"strings"
	"testing"
)

func benchNs(name string, procs int, ns float64) BenchSummary {
	return BenchSummary{Name: name, Procs: procs, Runs: 5,
		Metrics: []MetricSummary{{Unit: "ns/op", N: 5, Min: ns, Median: ns, Mean: ns, Max: ns}}}
}

func TestBaseNameOf(t *testing.T) {
	cases := []struct{ in, want string }{
		{"HotLoopSampled/q=11/lowdepth", "HotLoop/q=11/lowdepth"},
		{"HotLoopSampled", "HotLoop"},
		{"HotLoop/q=11/lowdepth", ""},
		{"Sampled", ""},             // nothing left after stripping
		{"HotLoop/Sampled/x", ""},   // suffix must be on the first segment
		{"SampledHotLoop/q=11", ""}, // suffix, not prefix
	}
	for _, c := range cases {
		if got := baseNameOf(c.in); got != c.want {
			t.Errorf("baseNameOf(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTelemetryOverhead(t *testing.T) {
	s := &Snapshot{Benchmarks: []BenchSummary{
		benchNs("HotLoop/q=11/lowdepth", 8, 1000),
		benchNs("HotLoop/q=11/single", 8, 500),
		benchNs("HotLoopSampled/q=11/lowdepth", 8, 1030),
		benchNs("HotLoopSampled/q=11/single", 8, 560),
		benchNs("HotLoopSampled/q=11/hamiltonian", 8, 700), // no base → skipped
		benchNs("HotLoop/q=11/lowdepth", 4, 900),           // procs mismatch vs sampled@8 is fine: its own pair is absent
		benchNs("Unrelated", 8, 100),
	}}
	pairs := TelemetryOverhead(s)
	if len(pairs) != 2 {
		t.Fatalf("got %d pairs: %+v", len(pairs), pairs)
	}
	if pairs[0].Name != "HotLoop/q=11/lowdepth" || pairs[0].BaseNs != 1000 || pairs[0].SampledNs != 1030 {
		t.Errorf("pair 0: %+v", pairs[0])
	}
	if got := pairs[0].Overhead; got < 0.029 || got > 0.031 {
		t.Errorf("lowdepth overhead %.4f, want ≈0.03", got)
	}
	if pairs[1].Name != "HotLoop/q=11/single" {
		t.Errorf("pair 1: %+v", pairs[1])
	}
	if got := pairs[1].Overhead; got < 0.119 || got > 0.121 {
		t.Errorf("single overhead %.4f, want ≈0.12", got)
	}

	fails := OverheadFailures(pairs, 0) // 0 → DefaultMaxOverhead
	if len(fails) != 1 || !strings.Contains(fails[0], "HotLoop/q=11/single") {
		t.Fatalf("failures: %v", fails)
	}
	if fails := OverheadFailures(pairs, 0.15); len(fails) != 0 {
		t.Fatalf("budget 15%% should pass: %v", fails)
	}

	var buf bytes.Buffer
	if err := WriteOverheadMarkdown(&buf, pairs, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# Telemetry overhead (budget 5.0%)", "OVER BUDGET", "| HotLoop/q=11/lowdepth |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q in:\n%s", want, out)
		}
	}
}

func TestTelemetryOverheadNoPairs(t *testing.T) {
	s := &Snapshot{Benchmarks: []BenchSummary{benchNs("HotLoop/q=11/single", 8, 500)}}
	if pairs := TelemetryOverhead(s); len(pairs) != 0 {
		t.Fatalf("unexpected pairs: %+v", pairs)
	}
	var buf bytes.Buffer
	if err := WriteOverheadMarkdown(&buf, nil, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "No base↔sampled benchmark pairs") {
		t.Errorf("empty markdown: %s", buf.String())
	}
}
