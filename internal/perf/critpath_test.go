package perf

import (
	"reflect"
	"strings"
	"testing"

	"polarfly/internal/critpath"
)

// TestCritPathQ3 runs the smallest real critical-path sweep: every
// embedding at q=3, fault-free and under the worst-case link failure.
// Every analysable point must conserve cycles exactly with zero residue,
// fault-free points must be serialization-dominated on the hottest link,
// and faulted multi-tree points must blame exactly the collector's
// measured recovery latency.
func TestCritPathQ3(t *testing.T) {
	cfg := DefaultCritPathConfig()
	cfg.Qs = []int{3}
	cfg.M = 2048
	cfg.FailAt = 300
	points, err := CritPath(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 3 fault-free + 3 faulted (single-tree faulted aborts).
	if len(points) != 6 {
		t.Fatalf("%d points, want 6: %+v", len(points), points)
	}
	for _, pt := range points {
		id := pt.Embedding
		if pt.Faulted {
			id += " faulted"
		}
		if pt.AllTreesLost {
			if pt.Embedding != "single-tree" || !pt.Faulted {
				t.Errorf("%s: unexpected AllTreesLost", id)
			}
			continue
		}
		if pt.AnalysisError != "" {
			t.Errorf("%s: analysis failed: %s", id, pt.AnalysisError)
			continue
		}
		if !pt.ConservationOK {
			t.Errorf("%s: blame does not sum to %d cycles: %+v", id, pt.Cycles, pt.Blame)
		}
		if pt.Unattributed != 0 {
			t.Errorf("%s: %d unattributed cycles", id, pt.Unattributed)
		}
		if !pt.Faulted {
			if pt.DominantClass != "serialization" {
				t.Errorf("%s: dominant class %q, want serialization", id, pt.DominantClass)
			}
			if len(pt.TopSerialization) == 0 {
				t.Errorf("%s: no serialization bottleneck link recorded", id)
			}
			if pt.RecoveriesMeasured != 0 || pt.RecoveriesOnPath != 0 {
				t.Errorf("%s: fault-free point recorded recoveries: %+v", id, pt)
			}
		} else {
			if pt.RecoveriesMeasured == 0 {
				t.Errorf("%s: fault plan produced no recovery", id)
			}
			if pt.RecoveriesOnPath != pt.RecoveriesMeasured {
				t.Errorf("%s: path traversed %d recoveries, measured %d",
					id, pt.RecoveriesOnPath, pt.RecoveriesMeasured)
			}
			if pt.RecoveryBlameCycles != pt.MeasuredRecoveryCycles {
				t.Errorf("%s: recovery blame %d != measured latency %d",
					id, pt.RecoveryBlameCycles, pt.MeasuredRecoveryCycles)
			}
		}
	}
	if fails := CritPathFailures(points); len(fails) != 0 {
		t.Errorf("unexpected critpath failures: %v", fails)
	}
}

// TestCritPathDeterministic: same config, identical points — including
// across serial and parallel sweeps.
func TestCritPathDeterministic(t *testing.T) {
	cfg := DefaultCritPathConfig()
	cfg.Qs = []int{3}
	cfg.M = 512
	cfg.FailAt = 100
	cfg.Parallel = 1
	a, err := CritPath(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallel = 4
	b, err := CritPath(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Errorf("point %d differs between serial and parallel runs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestCritPathConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*CritPathConfig)
		sub  string
	}{
		{"no qs", func(c *CritPathConfig) { c.Qs = nil }, "at least one q"},
		{"bad m", func(c *CritPathConfig) { c.M = 0 }, "must be positive"},
		{"bad fail-at", func(c *CritPathConfig) { c.FailAt = 0 }, "fail-at"},
		{"bad q", func(c *CritPathConfig) { c.Qs = []int{6} }, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := DefaultCritPathConfig()
			cfg.M = 64
			c.mut(&cfg)
			_, err := CritPath(cfg)
			if err == nil {
				t.Fatal("no error")
			}
			if c.sub != "" && !strings.Contains(err.Error(), c.sub) {
				t.Errorf("error %q does not mention %q", err, c.sub)
			}
		})
	}
}

// TestCritPathFailures checks the gate on fabricated points.
func TestCritPathFailures(t *testing.T) {
	top := []critpath.LinkBlame{{From: 0, To: 1, Cycles: 60}}
	points := []CritPathPoint{
		{Embedding: "aborted", Faulted: true, AllTreesLost: true},
		{Embedding: "ok", Cycles: 100, ConservationOK: true,
			DominantClass: "serialization", TopSerialization: top},
		{Embedding: "leaky", Cycles: 100, ConservationOK: true, Unattributed: 7,
			DominantClass: "serialization", TopSerialization: top},
		{Embedding: "congested", Cycles: 100, ConservationOK: true,
			DominantClass: "congestion", TopSerialization: top},
		{Embedding: "mismatched", Faulted: true, Cycles: 100, ConservationOK: true,
			RecoveriesMeasured: 1, RecoveriesOnPath: 1,
			RecoveryBlameCycles: 40, MeasuredRecoveryCycles: 41},
		{Embedding: "broken", Cycles: 100, AnalysisError: "no delivery event"},
	}
	fails := CritPathFailures(points)
	if len(fails) != 4 {
		t.Fatalf("%d failures, want 4: %v", len(fails), fails)
	}
	if got := CritPathFailures(points[:2]); len(got) != 0 {
		t.Errorf("healthy points reported failures: %v", got)
	}
}

// TestWriteCritPathMarkdown renders a snapshot and spot-checks the table.
func TestWriteCritPathMarkdown(t *testing.T) {
	cfg := DefaultCritPathConfig()
	cfg.Qs = []int{3}
	cfg.M = 512
	cfg.FailAt = 100
	points, err := CritPath(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := &Snapshot{
		Schema: SnapshotSchema, Label: "test", Kind: KindCritPath,
		CritPath: points, CritPathConfig: &cfg,
	}
	var sb strings.Builder
	if err := WriteCritPathMarkdown(&sb, s); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Critical-path blame scorecard", "serialization",
		"fault-free", "faulted", "aborted as predicted"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}
