package perf

import "testing"

func TestSummarize(t *testing.T) {
	results := []BenchResult{
		{Name: "BenchmarkB", Procs: 1, Iterations: 10, Metrics: []Measurement{{Value: 300, Unit: "ns/op"}}},
		{Name: "BenchmarkA", Procs: 1, Iterations: 10, Metrics: []Measurement{
			{Value: 100, Unit: "ns/op"}, {Value: 8, Unit: "allocs/op"}}},
		{Name: "BenchmarkA", Procs: 1, Iterations: 10, Metrics: []Measurement{
			{Value: 200, Unit: "ns/op"}, {Value: 8, Unit: "allocs/op"}}},
		{Name: "BenchmarkA", Procs: 1, Iterations: 10, Metrics: []Measurement{
			{Value: 160, Unit: "ns/op"}, {Value: 8, Unit: "allocs/op"}}},
	}
	sums := Summarize(results)
	if len(sums) != 2 {
		t.Fatalf("%d summaries, want 2", len(sums))
	}
	// Sorted by name: A before B despite input order.
	a := sums[0]
	if a.Name != "BenchmarkA" || a.Runs != 3 {
		t.Fatalf("first summary %q runs=%d, want BenchmarkA runs=3", a.Name, a.Runs)
	}
	// Metrics sorted by unit: allocs/op before ns/op.
	if len(a.Metrics) != 2 || a.Metrics[0].Unit != "allocs/op" || a.Metrics[1].Unit != "ns/op" {
		t.Fatalf("metric order %+v, want [allocs/op ns/op]", a.Metrics)
	}
	ns := a.Metrics[1]
	if ns.N != 3 || ns.Min != 100 || ns.Median != 160 || ns.Max != 200 {
		t.Errorf("ns/op stats %+v, want n=3 min=100 median=160 max=200", ns)
	}
	if got, want := ns.Mean, (100.0+200+160)/3; got != want { //lint:ignore floatcmp exact sum of test constants
		t.Errorf("mean = %v, want %v", got, want)
	}
	if got, want := ns.Spread, 100.0/160; got != want { //lint:ignore floatcmp exact quotient of test constants
		t.Errorf("spread = %v, want %v", got, want)
	}
	// Repeated identical observations collapse to zero spread.
	al := a.Metrics[0]
	if al.Spread != 0 || al.Min != 8 || al.Max != 8 {
		t.Errorf("allocs/op stats %+v, want constant 8 with zero spread", al)
	}
}

func TestSummarizeEvenCountMedian(t *testing.T) {
	results := []BenchResult{
		{Name: "BenchmarkX", Procs: 1, Metrics: []Measurement{{Value: 10, Unit: "ns/op"}}},
		{Name: "BenchmarkX", Procs: 1, Metrics: []Measurement{{Value: 30, Unit: "ns/op"}}},
	}
	m, ok := Summarize(results)[0].Metric("ns/op")
	if !ok || m.Median != 20 {
		t.Errorf("even-count median = %v (present=%v), want 20", m.Median, ok)
	}
}

// TestSummarizeProcsSplit checks that the same name at different
// GOMAXPROCS stays two distinct benchmarks.
func TestSummarizeProcsSplit(t *testing.T) {
	results := []BenchResult{
		{Name: "BenchmarkX", Procs: 1, Metrics: []Measurement{{Value: 10, Unit: "ns/op"}}},
		{Name: "BenchmarkX", Procs: 8, Metrics: []Measurement{{Value: 2, Unit: "ns/op"}}},
	}
	sums := Summarize(results)
	if len(sums) != 2 {
		t.Fatalf("%d summaries, want 2", len(sums))
	}
	if sums[0].Procs != 1 || sums[1].Procs != 8 {
		t.Errorf("procs order %d,%d, want 1,8", sums[0].Procs, sums[1].Procs)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if got := Summarize(nil); len(got) != 0 {
		t.Errorf("Summarize(nil) = %+v, want empty", got)
	}
}
