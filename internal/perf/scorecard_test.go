package perf

import (
	"strings"
	"testing"
)

// TestScorecardQ3 runs the smallest real sweep end to end and checks the
// measured-vs-model contract plus the telemetry plumbing from obsv.
func TestScorecardQ3(t *testing.T) {
	cfg := DefaultScorecardConfig()
	cfg.Qs = []int{3}
	cfg.M = 4096
	points, err := Scorecard(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// q=3 is odd, so all three swept embeddings run.
	wantEmb := []string{"single-tree", "low-depth", "hamiltonian"}
	if len(points) != len(wantEmb) {
		t.Fatalf("%d points, want %d: %+v", len(points), len(wantEmb), points)
	}
	for i, pt := range points {
		if pt.Embedding != wantEmb[i] {
			t.Errorf("point %d embedding %q, want %q", i, pt.Embedding, wantEmb[i])
		}
		if pt.Q != 3 || pt.M != cfg.M {
			t.Errorf("%s: q=%d m=%d, want q=3 m=%d", pt.Embedding, pt.Q, pt.M, cfg.M)
		}
		if pt.Cycles <= 0 || pt.Trees <= 0 {
			t.Errorf("%s: cycles=%d trees=%d, want positive", pt.Embedding, pt.Cycles, pt.Trees)
		}
		if pt.ModelBW <= 0 || pt.MeasuredBW <= 0 {
			t.Errorf("%s: model=%v measured=%v, want positive", pt.Embedding, pt.ModelBW, pt.MeasuredBW)
		}
		if pt.BWRelErr < -cfg.Tolerance || pt.BWRelErr > cfg.Tolerance {
			t.Errorf("%s: relative error %.2f%% outside ±%.0f%%",
				pt.Embedding, 100*pt.BWRelErr, 100*cfg.Tolerance)
		}
		if !pt.MeetsBound {
			t.Errorf("%s: measured %.3f below %s floor %.3f",
				pt.Embedding, pt.MeasuredBW, pt.BoundName, pt.Bound)
		}
		if pt.ReducePhaseCycles <= 0 || pt.BcastPhaseCycles <= 0 {
			t.Errorf("%s: phase split %d/%d, want both positive",
				pt.Embedding, pt.ReducePhaseCycles, pt.BcastPhaseCycles)
		}
		if pt.ReducePhaseCycles+pt.BcastPhaseCycles != pt.Cycles {
			t.Errorf("%s: phases %d+%d != cycles %d",
				pt.Embedding, pt.ReducePhaseCycles, pt.BcastPhaseCycles, pt.Cycles)
		}
		if pt.MaxLinkUtil <= 0 {
			t.Errorf("%s: obsv link utilization %v not plumbed", pt.Embedding, pt.MaxLinkUtil)
		}
	}
	// The theorem floors for q=3: low-depth ≥ q·B/2 = 1.5, hamiltonian
	// bound 2·B = ⌊(q+1)/2⌋·B.
	if points[1].BoundName != BoundThm76 || points[1].Bound < 1.49 || points[1].Bound > 1.51 {
		t.Errorf("low-depth bound %v (%s), want 1.5 (%s)",
			points[1].Bound, points[1].BoundName, BoundThm76)
	}
	if points[2].BoundName != BoundThm719 {
		t.Errorf("hamiltonian bound name %q, want %q", points[2].BoundName, BoundThm719)
	}
	// Theorem 7.6 congestion structure: low-depth ≤ 2, hamiltonian
	// edge-disjoint (=1, zero shared links).
	if points[1].MaxEdgeCongestion > 2 {
		t.Errorf("low-depth congestion %d > 2", points[1].MaxEdgeCongestion)
	}
	if points[2].MaxEdgeCongestion != 1 || points[2].SharedDirectedLinks != 0 {
		t.Errorf("hamiltonian congestion %d shared %d, want 1 and 0",
			points[2].MaxEdgeCongestion, points[2].SharedDirectedLinks)
	}
	if fails := ScorecardFailures(points, cfg.Tolerance); len(fails) != 0 {
		t.Errorf("unexpected scorecard failures: %v", fails)
	}
}

// TestScorecardDeterministic: the sweep must be byte-for-byte repeatable.
func TestScorecardDeterministic(t *testing.T) {
	cfg := DefaultScorecardConfig()
	cfg.Qs = []int{3}
	cfg.M = 1024
	cfg.Tolerance = 0.5 // small m is out of the bandwidth regime; only determinism matters here
	a, err := Scorecard(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Scorecard(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("point %d differs between runs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestScorecardConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*ScorecardConfig)
		sub  string
	}{
		{"no qs", func(c *ScorecardConfig) { c.Qs = nil }, "at least one q"},
		{"bad m", func(c *ScorecardConfig) { c.M = 0 }, "must be positive"},
		{"bad tolerance", func(c *ScorecardConfig) { c.Tolerance = 1.0 }, "out of [0, 1)"},
		{"bad q", func(c *ScorecardConfig) { c.Qs = []int{6} }, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := DefaultScorecardConfig()
			c.mut(&cfg)
			_, err := Scorecard(cfg)
			if err == nil {
				t.Fatal("no error")
			}
			if c.sub != "" && !strings.Contains(err.Error(), c.sub) {
				t.Errorf("error %q does not mention %q", err, c.sub)
			}
		})
	}
}

// TestScorecardFailures checks the failure listing on fabricated points.
func TestScorecardFailures(t *testing.T) {
	points := []ScorePoint{
		{Q: 3, Embedding: "ok", ModelBW: 2, MeasuredBW: 1.95, BWRelErr: -0.025, Bound: 1.5, BoundName: BoundThm76, MeetsBound: true},
		{Q: 3, Embedding: "drifted", ModelBW: 2, MeasuredBW: 1.0, BWRelErr: -0.5, Bound: 1.5, BoundName: BoundThm76, MeetsBound: false},
	}
	fails := ScorecardFailures(points, 0.10)
	if len(fails) != 2 {
		t.Fatalf("%d failures, want 2 (model drift + bound miss): %v", len(fails), fails)
	}
	if !strings.Contains(fails[0], "drifted") || !strings.Contains(fails[1], "floor") {
		t.Errorf("failure text %v", fails)
	}
	if got := ScorecardFailures(points[:1], 0.10); len(got) != 0 {
		t.Errorf("healthy point reported failures: %v", got)
	}
}
