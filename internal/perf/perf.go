// Package perf is the repository's performance-observability layer: it
// parses `go test -bench -benchmem` output into typed results, reduces
// repeated runs to deterministic summary statistics, diffs two benchmark
// snapshots with a noise threshold so CI can gate on regressions, and
// produces the measured-vs-model scorecard that tracks how closely the
// cycle simulator reproduces the Algorithm 1 bandwidth predictions and
// the Theorem 7.6 / Theorem 7.19 bounds across design points.
//
// Everything is stdlib-only and deterministic: given the same inputs the
// package produces byte-identical snapshots, so BENCH_*.json files diff
// cleanly between commits.
package perf

import (
	"encoding/json"
	"fmt"
	"io"

	"polarfly/internal/tsdb"
)

// SnapshotSchema identifies the BENCH_*.json format version.
const SnapshotSchema = "polarfly-bench/v1"

// Snapshot kinds.
const (
	// KindBench is a snapshot of `go test -bench` results.
	KindBench = "bench"
	// KindScorecard is a measured-vs-model scorecard snapshot.
	KindScorecard = "scorecard"
	// KindDegraded is a fault-injection degraded-run scorecard snapshot.
	KindDegraded = "degraded-scorecard"
	// KindCritPath is a causal critical-path blame scorecard snapshot.
	KindCritPath = "critpath"
)

// Snapshot is the persisted form of one benchmark or scorecard run — the
// schema of the BENCH_<label>.json files at the repository root. A bench
// snapshot fills Benchmarks (and optionally Failed/Packages); a scorecard
// snapshot fills Scorecard and ScorecardConfig.
type Snapshot struct {
	Schema string `json:"schema"`
	Label  string `json:"label"`
	Kind   string `json:"kind"`
	// GoVersion is the toolchain that produced the numbers (set by the
	// CLI; informational).
	GoVersion string `json:"go_version,omitempty"`
	// Packages lists the packages whose benchmarks ran.
	Packages []string `json:"packages,omitempty"`
	// Failed lists benchmarks (or packages) that failed during the run; a
	// snapshot with failures must not be used as a regression baseline.
	Failed []string `json:"failed,omitempty"`
	// Benchmarks holds the per-benchmark summary statistics.
	Benchmarks []BenchSummary `json:"benchmarks,omitempty"`
	// Scorecard holds the measured-vs-model records.
	Scorecard []ScorePoint `json:"scorecard,omitempty"`
	// ScorecardConfig records the sweep parameters behind Scorecard.
	ScorecardConfig *ScorecardConfig `json:"scorecard_config,omitempty"`
	// Degraded holds the fault-injection validation records.
	Degraded []DegradedPoint `json:"degraded,omitempty"`
	// DegradedConfig records the sweep parameters behind Degraded.
	DegradedConfig *DegradedConfig `json:"degraded_config,omitempty"`
	// Timeline holds the streaming-telemetry snapshots, one per embedding.
	Timeline []*tsdb.Snapshot `json:"timeline,omitempty"`
	// TimelineConfig records the sweep parameters behind Timeline.
	TimelineConfig *TimelineConfig `json:"timeline_config,omitempty"`
	// CritPath holds the causal critical-path blame records.
	CritPath []CritPathPoint `json:"critpath,omitempty"`
	// CritPathConfig records the sweep parameters behind CritPath.
	CritPathConfig *CritPathConfig `json:"critpath_config,omitempty"`
}

// WriteJSON writes the snapshot as indented JSON. Field order is fixed by
// the struct, so output is deterministic.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// DecodeSnapshot reads and validates one snapshot.
func DecodeSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("perf: decoding snapshot: %w", err)
	}
	if s.Schema != SnapshotSchema {
		return nil, fmt.Errorf("perf: snapshot schema %q, want %q", s.Schema, SnapshotSchema)
	}
	return &s, nil
}
