package perf

import (
	"errors"
	"fmt"
	"io"
	"math"

	"polarfly/internal/core"
	"polarfly/internal/faults"
	"polarfly/internal/netsim"
	"polarfly/internal/parrun"
	"polarfly/internal/workload"
)

// DegradedConfig parameterises the fault-injection validation sweep: one
// worst-case link failure mid-reduction per embedding kind, with the
// measured post-recovery bandwidth gated against the core.Degrade
// analytical prediction.
type DegradedConfig struct {
	// Q is the PolarFly order (odd prime powers exercise all embeddings).
	Q int `json:"q"`
	// M is the Allreduce vector length; must be large enough that plenty
	// of work remains after FailAt, or the post-recovery measurement is
	// latency- rather than bandwidth-dominated.
	M int `json:"m"`
	// LinkLatency and VCDepth configure the simulated fabric.
	LinkLatency int `json:"link_latency"`
	VCDepth     int `json:"vc_depth"`
	// FailAt is the cycle the worst-case link goes down — mid-reduction
	// for the default M.
	FailAt int `json:"fail_at"`
	// Seed drives the workload and the Hamiltonian search.
	Seed int64 `json:"seed"`
	// Tolerance is the acceptable relative gap between the measured
	// post-recovery bandwidth and the Degrade prediction.
	Tolerance float64 `json:"tolerance"`
	// Parallel is the parrun worker-pool size across embedding kinds: 1
	// forces the serial path, <1 means GOMAXPROCS. Ordered commit keeps
	// the returned points identical either way; the field is excluded
	// from snapshots so BENCH_*.json stays byte-identical across runners.
	Parallel int `json:"-"`
	// Engine selects the netsim advance strategy; engines are
	// byte-identical, so it is excluded from snapshots.
	Engine netsim.Engine `json:"-"`
}

// DefaultDegradedConfig is calibrated like DefaultScorecardConfig:
// latency-1 links and a large vector keep the measurement in the
// bandwidth regime, and failing at cycle 2000 leaves most of the work to
// the surviving trees.
func DefaultDegradedConfig() DegradedConfig {
	return DegradedConfig{
		Q:           7,
		M:           16384,
		LinkLatency: 1,
		VCDepth:     4,
		FailAt:      2000,
		Seed:        core.DefaultSeed,
		Tolerance:   0.10,
	}
}

// DegradedPoint is one fault-injected design point: the worst-case single
// link failure for an embedding, the recovery the simulator performed,
// and the measured-vs-predicted degraded bandwidth.
type DegradedPoint struct {
	Q         int    `json:"q"`
	Embedding string `json:"embedding"`
	Trees     int    `json:"trees"`
	M         int    `json:"m"`
	// FailedLink is the injected worst-case link (u < v) and FailAt its
	// activation cycle.
	FailedLink [2]int `json:"failed_link"`
	FailAt     int    `json:"fail_at"`
	// AllTreesLost marks the single-tree baseline outcome: the run
	// cannot recover and aborts. The remaining fields are zero.
	AllTreesLost bool `json:"all_trees_lost,omitempty"`
	// DeadTrees, RecoveryCycle, Reissued, and DroppedFlits summarise the
	// recovery round the simulator performed.
	DeadTrees     []int `json:"dead_trees,omitempty"`
	RecoveryCycle int   `json:"recovery_cycle,omitempty"`
	Reissued      int   `json:"reissued,omitempty"`
	DroppedFlits  int   `json:"dropped_flits,omitempty"`
	Cycles        int   `json:"cycles,omitempty"`
	// PredictedBW is the core.Degrade model aggregate of the surviving
	// forest; MeasuredBW the simulator's post-recovery bandwidth;
	// RelErr their relative error; Within whether |RelErr| ≤ Tolerance.
	PredictedBW float64 `json:"predicted_bw"`
	MeasuredBW  float64 `json:"measured_bw"`
	RelErr      float64 `json:"rel_err"`
	Within      bool    `json:"within"`
	// OutputsOK records the end-to-end numerical check: every node ended
	// with the exact element-wise sum despite the mid-run failure.
	OutputsOK bool `json:"outputs_ok"`
}

// DegradedScorecard injects the worst-case single link failure into a
// mid-reduction Allreduce for every embedding kind of cfg.Q and validates
// the dynamic recovery against the analytical degradation model: the
// multi-tree embeddings must finish with numerically correct outputs and
// a post-recovery bandwidth within tolerance of core.Degrade's
// prediction, while the single-tree baseline must abort with
// netsim.ErrAllTreesLost.
func DegradedScorecard(cfg DegradedConfig) ([]DegradedPoint, error) {
	if cfg.M <= 0 {
		return nil, fmt.Errorf("perf: degraded vector length must be positive, got %d", cfg.M)
	}
	if cfg.FailAt < 1 {
		return nil, fmt.Errorf("perf: degraded fail-at cycle must be ≥ 1, got %d", cfg.FailAt)
	}
	if cfg.Tolerance < 0 || cfg.Tolerance >= 1 {
		return nil, fmt.Errorf("perf: tolerance %g out of [0, 1)", cfg.Tolerance)
	}
	kinds := sweepKinds(cfg.Q)
	return parrun.Map(cfg.Parallel, len(kinds), func(i int) (DegradedPoint, error) {
		return degradedPoint(cfg, kinds[i])
	})
}

// degradedPoint runs the worst-case fault injection for one embedding
// kind. Like scorePoint, every piece of state is built locally from the
// deterministic config so concurrent calls never share anything.
func degradedPoint(cfg DegradedConfig, kind core.EmbeddingKind) (DegradedPoint, error) {
	inst, err := core.NewInstance(cfg.Q)
	if err != nil {
		return DegradedPoint{}, err
	}
	inputs := workload.Vectors(inst.N(), cfg.M, 1000, cfg.Seed)
	want := netsim.ExpectedOutput(inputs)
	e, err := inst.Embed(kind)
	if err != nil {
		return DegradedPoint{}, err
	}
	link, deg, err := core.WorstCaseLink(e)
	if err != nil {
		return DegradedPoint{}, err
	}
	plan := &faults.Plan{Faults: []faults.Fault{
		{Kind: faults.LinkDown, U: link[0], V: link[1], At: cfg.FailAt},
	}}
	runCfg := netsim.Config{LinkLatency: cfg.LinkLatency, VCDepth: cfg.VCDepth, Faults: plan, Engine: cfg.Engine}
	pt := DegradedPoint{
		Q: cfg.Q, Embedding: kind.String(), Trees: len(e.Forest),
		M: cfg.M, FailedLink: link, FailAt: cfg.FailAt,
	}
	res, err := inst.Allreduce(e, inputs, runCfg)
	if deg == nil {
		// The worst case kills every tree (single-tree baseline): the
		// run must abort with the sentinel, not hang or mis-answer.
		if !errors.Is(err, netsim.ErrAllTreesLost) {
			return DegradedPoint{}, fmt.Errorf("perf: q=%d %v: want ErrAllTreesLost, got %v", cfg.Q, kind, err)
		}
		pt.AllTreesLost = true
		pt.Within = true // nothing to predict; the abort IS the prediction
		return pt, nil
	}
	if err != nil {
		return DegradedPoint{}, fmt.Errorf("perf: q=%d %v: %w", cfg.Q, kind, err)
	}
	pt.DeadTrees = res.DeadTrees
	pt.DroppedFlits = res.DroppedFlits
	pt.Cycles = res.Cycles
	if len(res.Recoveries) > 0 {
		pt.RecoveryCycle = res.Recoveries[len(res.Recoveries)-1].Cycle
		pt.Reissued = res.Recoveries[len(res.Recoveries)-1].Reissued
	}
	pt.PredictedBW = deg.Model.Aggregate
	pt.MeasuredBW = res.PostRecoveryBW
	if pt.PredictedBW > 0 {
		pt.RelErr = (pt.MeasuredBW - pt.PredictedBW) / pt.PredictedBW
	}
	pt.Within = math.Abs(pt.RelErr) <= cfg.Tolerance
	pt.OutputsOK = true
	for v := range res.Outputs {
		for k := range want {
			if res.Outputs[v][k] != want[k] {
				pt.OutputsOK = false
				break
			}
		}
		if !pt.OutputsOK {
			break
		}
	}
	return pt, nil
}

// DegradedFailures lists every violation of the degraded-run contract:
// wrong outputs, a recovery that never happened, or a measured
// post-recovery bandwidth outside tolerance of the Degrade prediction.
// Empty means the degraded scorecard passes.
func DegradedFailures(points []DegradedPoint) []string {
	var fails []string
	for _, pt := range points {
		if pt.AllTreesLost {
			continue
		}
		if !pt.OutputsOK {
			fails = append(fails, fmt.Sprintf(
				"q=%d %s: fault-injected run produced wrong outputs", pt.Q, pt.Embedding))
		}
		if pt.RecoveryCycle == 0 {
			fails = append(fails, fmt.Sprintf(
				"q=%d %s: no recovery despite link %v failing at cycle %d",
				pt.Q, pt.Embedding, pt.FailedLink, pt.FailAt))
		}
		if !pt.Within {
			fails = append(fails, fmt.Sprintf(
				"q=%d %s: post-recovery %.3f vs Degrade prediction %.3f elem/cycle (%.1f%% off)",
				pt.Q, pt.Embedding, pt.MeasuredBW, pt.PredictedBW, 100*pt.RelErr))
		}
	}
	return fails
}

// WriteDegradedMarkdown renders the degraded scorecard.
func WriteDegradedMarkdown(w io.Writer, s *Snapshot) error {
	if _, err := fmt.Fprintf(w, "### Degraded-run scorecard — %s\n\n", s.Label); err != nil {
		return err
	}
	if cfg := s.DegradedConfig; cfg != nil {
		if _, err := fmt.Fprintf(w, "q=%d, m=%d, fail at cycle %d, link latency=%d, VC depth=%d, tolerance=%.0f%%\n\n",
			cfg.Q, cfg.M, cfg.FailAt, cfg.LinkLatency, cfg.VCDepth, 100*cfg.Tolerance); err != nil {
			return err
		}
	}
	if err := writeRow(w, "embedding", "trees", "failed link", "dead trees",
		"recovered@", "predicted B", "measured B", "err", "ok"); err != nil {
		return err
	}
	if err := writeRule(w, 9); err != nil {
		return err
	}
	for _, pt := range s.Degraded {
		if pt.AllTreesLost {
			if err := writeRow(w, pt.Embedding, fmt.Sprintf("%d", pt.Trees),
				fmt.Sprintf("%d-%d", pt.FailedLink[0], pt.FailedLink[1]),
				"all", "-", "0 (no survivors)", "-", "-", "aborted as predicted"); err != nil {
				return err
			}
			continue
		}
		ok := "yes"
		if !pt.Within || !pt.OutputsOK {
			ok = "**NO**"
		}
		if err := writeRow(w, pt.Embedding, fmt.Sprintf("%d", pt.Trees),
			fmt.Sprintf("%d-%d", pt.FailedLink[0], pt.FailedLink[1]),
			fmt.Sprintf("%v", pt.DeadTrees),
			fmt.Sprintf("%d", pt.RecoveryCycle),
			fmt.Sprintf("%.3f", pt.PredictedBW), fmt.Sprintf("%.3f", pt.MeasuredBW),
			fmt.Sprintf("%+.2f%%", 100*pt.RelErr), ok); err != nil {
			return err
		}
	}
	return nil
}
