package perf

import (
	"errors"
	"fmt"
	"io"

	"polarfly/internal/core"
	"polarfly/internal/critpath"
	"polarfly/internal/faults"
	"polarfly/internal/netsim"
	"polarfly/internal/obsv"
	"polarfly/internal/parrun"
	"polarfly/internal/workload"
)

// CritPathConfig parameterises the causal critical-path sweep: every
// embedding kind of every q is traced and analysed fault-free, then
// again under the worst-case single link failure, and each analysis is
// gated on the exact-conservation invariant (blame classes sum to the
// run's cycle count with zero residue).
type CritPathConfig struct {
	// Qs are the PolarFly orders to sweep (odd prime powers exercise all
	// embeddings; for even q the low-depth point is skipped).
	Qs []int `json:"qs"`
	// M is the Allreduce vector length. The serialization-dominance gate
	// needs the bandwidth regime, so the default is large.
	M int `json:"m"`
	// LinkLatency and VCDepth configure the simulated fabric.
	LinkLatency int `json:"link_latency"`
	VCDepth     int `json:"vc_depth"`
	// FailAt is the activation cycle of the injected worst-case link
	// failure in the faulted half of the sweep.
	FailAt int `json:"fail_at"`
	// Seed drives the workload and the Hamiltonian search.
	Seed int64 `json:"seed"`
	// Parallel is the parrun worker-pool size across design points: 1
	// forces the serial path, <1 means GOMAXPROCS. Ordered commit keeps
	// the returned points identical either way; the field is excluded
	// from snapshots so CRITPATH_*.json stays byte-identical.
	Parallel int `json:"-"`
	// Engine selects the netsim advance strategy; engines are
	// byte-identical, so it is excluded from snapshots.
	Engine netsim.Engine `json:"-"`
}

// DefaultCritPathConfig matches the scorecard calibration (latency-1
// links, m=16384 well inside the bandwidth regime) and the degraded
// sweep's mid-reduction failure cycle.
func DefaultCritPathConfig() CritPathConfig {
	return CritPathConfig{
		Qs:          []int{3, 5, 7, 11},
		M:           16384,
		LinkLatency: 1,
		VCDepth:     4,
		FailAt:      2000,
		Seed:        core.DefaultSeed,
	}
}

// CritPathPoint is one analysed design point: the per-class blame split
// of the run's critical path, the conservation check, and — for faulted
// points — the cross-check of the path's fault-detect+recovery blame
// against the obsv collector's independently measured recovery latency.
type CritPathPoint struct {
	Q         int    `json:"q"`
	Embedding string `json:"embedding"`
	Trees     int    `json:"trees"`
	M         int    `json:"m"`
	// Faulted marks the fault-injected half of the sweep; FailedLink is
	// the worst-case link and FailAt its activation cycle.
	Faulted    bool  `json:"faulted,omitempty"`
	FailedLink []int `json:"failed_link,omitempty"`
	FailAt     int   `json:"fail_at,omitempty"`
	// AllTreesLost marks the single-tree faulted outcome: the run aborts
	// with netsim.ErrAllTreesLost, so there is no path to analyse.
	AllTreesLost bool `json:"all_trees_lost,omitempty"`
	Cycles       int  `json:"cycles,omitempty"`
	// PathSegments and PathNodes size the reconstructed critical path.
	PathSegments int `json:"path_segments,omitempty"`
	PathNodes    int `json:"path_nodes,omitempty"`
	// Blame is the per-class cycle attribution in canonical class order;
	// ConservationOK records whether it sums exactly to Cycles and
	// Unattributed is the residue the causal model could not explain.
	Blame          []critpath.BlameEntry `json:"blame,omitempty"`
	ConservationOK bool                  `json:"conservation_ok"`
	Unattributed   int                   `json:"unattributed"`
	DominantClass  string                `json:"dominant_class,omitempty"`
	// TopSerialization lists the up-to-three links with the most
	// serialization blame; MaxUtilLink is the obsv collector's hottest
	// directed link and TopLinkIsHottest whether the path's top
	// serialization link is (one of) the maximally utilized links.
	// Informational, not gated: on congestion-shared forests the hottest
	// global link sums two trees' streams while the path's serialization
	// bottleneck is the completing tree's own busiest link (the shared
	// link's delay surfaces as congestion blame instead).
	TopSerialization   []critpath.LinkBlame `json:"top_serialization,omitempty"`
	MaxUtilLink        []int                `json:"max_util_link,omitempty"`
	MaxLinkUtilization float64              `json:"max_link_utilization,omitempty"`
	TopLinkIsHottest   bool                 `json:"top_link_is_hottest,omitempty"`
	// Recovery cross-check. The path traverses a recovery round only
	// when the completion chain runs through a re-issued job — a
	// surviving tree's original job can deliver last instead, in which
	// case the re-issued traffic's delay is congestion blame and the
	// round is legitimately off the path. The exactness contract: blame
	// equals the collector's measured latency for exactly the traversed
	// rounds, so traversing all of them means exact equality with the
	// measured total, and traversing a subset means blame stays below it.
	RecoveriesMeasured     int `json:"recoveries_measured,omitempty"`
	RecoveriesOnPath       int `json:"recoveries_on_path,omitempty"`
	RecoveryBlameCycles    int `json:"recovery_blame_cycles,omitempty"`
	MeasuredRecoveryCycles int `json:"measured_recovery_cycles,omitempty"`
	// RecoveryRounds lists the traversed rounds (indices into the
	// collector's recovery order) and TraversedRecoveryCycles their summed
	// measured latency — the exact quantity the blame must equal even when
	// nested recoveries leave some rounds legitimately off the path.
	RecoveryRounds          []int `json:"recovery_rounds,omitempty"`
	TraversedRecoveryCycles int   `json:"traversed_recovery_cycles,omitempty"`
	// AnalysisError records an Analyze failure verbatim (always a gate
	// failure; the fields above are zero).
	AnalysisError string `json:"analysis_error,omitempty"`
}

// critJob is one independent design point of the sweep.
type critJob struct {
	q       int
	kind    core.EmbeddingKind
	faulted bool
}

// CritPath sweeps the configured design points, reconstructs each run's
// causal critical path from the trace stream, and returns one blame
// record per (q, embedding, faulted). Points are independent — each job
// builds its own instance, workload, collector, and builder from the
// seeded config — so cfg.Parallel of them run concurrently on a parrun
// pool with ordered commit.
func CritPath(cfg CritPathConfig) ([]CritPathPoint, error) {
	if len(cfg.Qs) == 0 {
		return nil, fmt.Errorf("perf: critpath sweep needs at least one q")
	}
	if cfg.M <= 0 {
		return nil, fmt.Errorf("perf: critpath vector length must be positive, got %d", cfg.M)
	}
	if cfg.FailAt < 1 {
		return nil, fmt.Errorf("perf: critpath fail-at cycle must be ≥ 1, got %d", cfg.FailAt)
	}
	var jobs []critJob
	for _, q := range cfg.Qs {
		for _, faulted := range []bool{false, true} {
			for _, kind := range sweepKinds(q) {
				jobs = append(jobs, critJob{q: q, kind: kind, faulted: faulted})
			}
		}
	}
	return parrun.Map(cfg.Parallel, len(jobs), func(i int) (CritPathPoint, error) {
		return critPathPoint(cfg, jobs[i])
	})
}

// critPathPoint traces and analyses one design point. Everything it
// touches is built locally from the deterministic config, so concurrent
// calls never share state.
func critPathPoint(cfg CritPathConfig, job critJob) (CritPathPoint, error) {
	inst, err := core.NewInstance(job.q)
	if err != nil {
		return CritPathPoint{}, err
	}
	inputs := workload.Vectors(inst.N(), cfg.M, 1000, cfg.Seed)
	e, err := inst.Embed(job.kind)
	if err != nil {
		return CritPathPoint{}, err
	}
	pt := CritPathPoint{
		Q: job.q, Embedding: job.kind.String(), Trees: len(e.Forest), M: cfg.M,
	}
	runCfg := netsim.Config{LinkLatency: cfg.LinkLatency, VCDepth: cfg.VCDepth, Engine: cfg.Engine}
	survivors := true
	if job.faulted {
		link, deg, err := core.WorstCaseLink(e)
		if err != nil {
			return CritPathPoint{}, err
		}
		pt.Faulted = true
		pt.FailedLink = []int{link[0], link[1]}
		pt.FailAt = cfg.FailAt
		survivors = deg != nil
		runCfg.Faults = &faults.Plan{Faults: []faults.Fault{
			{Kind: faults.LinkDown, U: link[0], V: link[1], At: cfg.FailAt},
		}}
	}
	col := obsv.NewCollector()
	col.DisableSpans = true // Metrics-only; Chrome spans are O(flits) at q=31 scale
	col.Attach(&runCfg)
	b := critpath.NewBuilder()
	b.Attach(&runCfg)
	res, err := inst.Allreduce(e, inputs, runCfg)
	if !survivors {
		// The worst case kills every tree (single-tree baseline): the run
		// must abort with the sentinel; there is no path to analyse.
		if !errors.Is(err, netsim.ErrAllTreesLost) {
			return CritPathPoint{}, fmt.Errorf("perf: q=%d %v: want ErrAllTreesLost, got %v", job.q, job.kind, err)
		}
		pt.AllTreesLost = true
		pt.ConservationOK = true // nothing to conserve; the abort is the expectation
		return pt, nil
	}
	if err != nil {
		return CritPathPoint{}, fmt.Errorf("perf: q=%d %v: %w", job.q, job.kind, err)
	}
	col.SetCycles(res.Cycles)
	rep := col.Report()
	pt.Cycles = res.Cycles

	a, aerr := b.Analyze(res.Cycles)
	if aerr != nil {
		pt.AnalysisError = aerr.Error()
		return pt, nil
	}
	pt.PathSegments = len(a.Segments)
	pt.PathNodes = a.PathNodes
	pt.Blame = a.Blame
	total := 0
	for _, be := range a.Blame {
		total += be.Cycles
	}
	pt.ConservationOK = total == res.Cycles
	pt.Unattributed = a.Unattributed
	pt.DominantClass = a.DominantClass()
	top := a.TopSerialization
	if len(top) > 3 {
		top = top[:3]
	}
	pt.TopSerialization = top
	pt.MaxLinkUtilization = rep.MaxLinkUtilization
	// Utilization is flits over the shared run length, so "hottest" ties
	// are exact; the tiny slack only guards float division noise.
	hot := rep.MaxLinkUtilization * (1 - 1e-9)
	for _, lr := range rep.Links {
		if lr.Utilization >= hot {
			pt.MaxUtilLink = []int{lr.From, lr.To}
			break
		}
	}
	if len(top) > 0 {
		for _, lr := range rep.Links {
			if lr.From == top[0].From && lr.To == top[0].To {
				pt.TopLinkIsHottest = lr.Utilization >= hot
				break
			}
		}
	}
	pt.RecoveriesMeasured = len(rep.Recoveries)
	pt.RecoveriesOnPath = a.RecoveriesOnPath
	pt.RecoveryBlameCycles = a.BlameCycles("fault-detect") + a.BlameCycles("recovery")
	for _, r := range rep.Recoveries {
		pt.MeasuredRecoveryCycles += r.LatencyCycles
	}
	pt.RecoveryRounds = a.RecoveryRounds
	for _, ri := range a.RecoveryRounds {
		if ri < len(rep.Recoveries) {
			pt.TraversedRecoveryCycles += rep.Recoveries[ri].LatencyCycles
		}
	}
	return pt, nil
}

// CritPathFailures lists every violation of the critical-path contract:
// a blame split that does not sum exactly to the cycle count,
// unattributed residue, a fault-free run not dominated by link
// serialization on a maximally utilized link, or a faulted run whose
// fault-detect+recovery blame disagrees with the collector's measured
// recovery latency. Empty means the critpath gate passes.
func CritPathFailures(points []CritPathPoint) []string {
	var fails []string
	for _, pt := range points {
		id := fmt.Sprintf("q=%d %s", pt.Q, pt.Embedding)
		if pt.Faulted {
			id += " faulted"
		}
		if pt.AllTreesLost {
			continue
		}
		if pt.AnalysisError != "" {
			fails = append(fails, fmt.Sprintf("%s: analysis failed: %s", id, pt.AnalysisError))
			continue
		}
		if !pt.ConservationOK {
			total := 0
			for _, be := range pt.Blame {
				total += be.Cycles
			}
			fails = append(fails, fmt.Sprintf(
				"%s: blame classes sum to %d, want exactly %d cycles", id, total, pt.Cycles))
		}
		if pt.Unattributed != 0 {
			fails = append(fails, fmt.Sprintf(
				"%s: %d unattributed cycles on the critical path", id, pt.Unattributed))
		}
		if !pt.Faulted {
			if pt.DominantClass != critpath.ClassSerialization.String() {
				fails = append(fails, fmt.Sprintf(
					"%s: dominant blame %q, want serialization (blame %v)", id, pt.DominantClass, pt.Blame))
			}
			if len(pt.TopSerialization) == 0 {
				fails = append(fails, fmt.Sprintf("%s: no serialization bottleneck link recorded", id))
			}
		} else {
			switch {
			case pt.RecoveriesOnPath > pt.RecoveriesMeasured:
				fails = append(fails, fmt.Sprintf(
					"%s: path traversed %d recovery rounds, collector measured only %d",
					id, pt.RecoveriesOnPath, pt.RecoveriesMeasured))
			case pt.RecoveriesOnPath == pt.RecoveriesMeasured && pt.RecoveryBlameCycles != pt.MeasuredRecoveryCycles:
				fails = append(fails, fmt.Sprintf(
					"%s: fault-detect+recovery blame %d cycles != measured recovery latency %d",
					id, pt.RecoveryBlameCycles, pt.MeasuredRecoveryCycles))
			case pt.RecoveriesOnPath < pt.RecoveriesMeasured && len(pt.RecoveryRounds) > 0 &&
				pt.RecoveryBlameCycles != pt.TraversedRecoveryCycles:
				fails = append(fails, fmt.Sprintf(
					"%s: fault-detect+recovery blame %d cycles != measured latency %d of the %d traversed rounds %v",
					id, pt.RecoveryBlameCycles, pt.TraversedRecoveryCycles, pt.RecoveriesOnPath, pt.RecoveryRounds))
			case pt.RecoveriesOnPath < pt.RecoveriesMeasured && pt.RecoveryBlameCycles > pt.MeasuredRecoveryCycles:
				// Backstop for snapshots predating the traversed-round list.
				fails = append(fails, fmt.Sprintf(
					"%s: blame %d cycles for %d of %d recovery rounds exceeds the measured total %d",
					id, pt.RecoveryBlameCycles, pt.RecoveriesOnPath, pt.RecoveriesMeasured, pt.MeasuredRecoveryCycles))
			}
		}
	}
	return fails
}

// WriteCritPathMarkdown renders the critical-path blame scorecard.
func WriteCritPathMarkdown(w io.Writer, s *Snapshot) error {
	if _, err := fmt.Fprintf(w, "### Critical-path blame scorecard — %s\n\n", s.Label); err != nil {
		return err
	}
	if cfg := s.CritPathConfig; cfg != nil {
		if _, err := fmt.Fprintf(w, "m=%d, link latency=%d, VC depth=%d, faulted runs fail the worst-case link at cycle %d\n\n",
			cfg.M, cfg.LinkLatency, cfg.VCDepth, cfg.FailAt); err != nil {
			return err
		}
	}
	if err := writeRow(w, "q", "embedding", "mode", "cycles", "dominant",
		"top link", "ser share", "fault+rec blame", "ok"); err != nil {
		return err
	}
	if err := writeRule(w, 9); err != nil {
		return err
	}
	for _, pt := range s.CritPath {
		mode := "fault-free"
		if pt.Faulted {
			mode = "faulted"
		}
		if pt.AllTreesLost {
			if err := writeRow(w, fmt.Sprintf("%d", pt.Q), pt.Embedding, mode,
				"-", "-", "-", "-", "-", "aborted as predicted"); err != nil {
				return err
			}
			continue
		}
		topLink, serShare := "-", "-"
		if len(pt.TopSerialization) > 0 {
			top := pt.TopSerialization[0]
			topLink = fmt.Sprintf("%d→%d", top.From, top.To)
		}
		for _, be := range pt.Blame {
			if be.Class == critpath.ClassSerialization.String() && pt.Cycles > 0 {
				serShare = fmt.Sprintf("%.1f%%", 100*float64(be.Cycles)/float64(pt.Cycles))
			}
		}
		faultRec := "-"
		if pt.Faulted {
			faultRec = fmt.Sprintf("%d/%d", pt.RecoveryBlameCycles, pt.MeasuredRecoveryCycles)
		}
		ok := "yes"
		if pt.AnalysisError != "" || !pt.ConservationOK || pt.Unattributed != 0 ||
			(!pt.Faulted && pt.DominantClass != critpath.ClassSerialization.String()) ||
			(pt.Faulted && pt.RecoveriesOnPath == pt.RecoveriesMeasured && pt.RecoveryBlameCycles != pt.MeasuredRecoveryCycles) ||
			(pt.Faulted && pt.RecoveriesOnPath < pt.RecoveriesMeasured && len(pt.RecoveryRounds) > 0 && pt.RecoveryBlameCycles != pt.TraversedRecoveryCycles) ||
			(pt.Faulted && pt.RecoveriesOnPath < pt.RecoveriesMeasured && pt.RecoveryBlameCycles > pt.MeasuredRecoveryCycles) {
			ok = "**NO**"
		}
		if err := writeRow(w, fmt.Sprintf("%d", pt.Q), pt.Embedding, mode,
			fmt.Sprintf("%d", pt.Cycles), pt.DominantClass, topLink, serShare, faultRec, ok); err != nil {
			return err
		}
	}
	return nil
}
