package perf

import (
	"strings"
	"testing"
)

func hotSnap(benches ...BenchSummary) *Snapshot {
	return &Snapshot{Schema: SnapshotSchema, Label: "t", Kind: KindBench, Benchmarks: benches}
}

func hotBench(name string, allocs float64) BenchSummary {
	return BenchSummary{Name: name, Runs: 1, Metrics: []MetricSummary{
		{Unit: "allocs/op", N: 1, Min: allocs, Median: allocs, Mean: allocs, Max: allocs},
	}}
}

func TestHotAllocCrossCheck(t *testing.T) {
	snap := hotSnap(
		hotBench("BenchmarkCycleLoop/q=11/single", 0),
		hotBench("BenchmarkCycleLoop/q=11/lowdepth", 1),
		hotBench("BenchmarkCycleLoop/q=11/hamiltonian", 7487),
		hotBench("BenchmarkHotLoop/q=11/single", 2_300_000),
	)
	results, err := HotAllocCrossCheck(snap, "BenchmarkCycleLoop", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("matched %d benchmarks, want 3 (prefix must exclude BenchmarkHotLoop)", len(results))
	}
	wantOK := map[string]bool{
		"BenchmarkCycleLoop/q=11/single":      true,
		"BenchmarkCycleLoop/q=11/lowdepth":    true, // exactly at budget
		"BenchmarkCycleLoop/q=11/hamiltonian": false,
	}
	for _, r := range results {
		if r.OK != wantOK[r.Name] {
			t.Errorf("%s: OK=%v, want %v (allocs=%g)", r.Name, r.OK, wantOK[r.Name], r.Allocs)
		}
	}
}

func TestHotAllocCrossCheckNoWitness(t *testing.T) {
	_, err := HotAllocCrossCheck(hotSnap(hotBench("BenchmarkOther", 0)), "BenchmarkCycleLoop", 1)
	if err == nil || !strings.Contains(err.Error(), "no benchmark") {
		t.Errorf("want no-witness error, got %v", err)
	}
}

func TestHotAllocCrossCheckMissingMetric(t *testing.T) {
	snap := hotSnap(BenchSummary{Name: "BenchmarkCycleLoop/x", Runs: 1,
		Metrics: []MetricSummary{{Unit: "ns/op", N: 1, Median: 100}}})
	_, err := HotAllocCrossCheck(snap, "BenchmarkCycleLoop", 1)
	if err == nil || !strings.Contains(err.Error(), "allocs/op") {
		t.Errorf("want missing-metric error, got %v", err)
	}
}
