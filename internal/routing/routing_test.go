package routing

import (
	"testing"

	"polarfly/internal/er"
	"polarfly/internal/graph"
)

func TestPathAndDistOnPath(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	rt := New(g)
	if rt.Dist(0, 3) != 3 {
		t.Errorf("Dist(0,3) = %d", rt.Dist(0, 3))
	}
	p := rt.Path(0, 3)
	want := []int{0, 1, 2, 3}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("Path(0,3) = %v", p)
		}
	}
	if rt.NextHop(0, 0) != 0 || rt.Dist(2, 2) != 0 {
		t.Error("self routing wrong")
	}
	links := rt.Links(0, 2)
	if len(links) != 2 || links[0] != [2]int{0, 1} || links[1] != [2]int{1, 2} {
		t.Errorf("Links(0,2) = %v", links)
	}
}

func TestUnreachablePanics(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	rt := New(g)
	if rt.Dist(0, 2) != -1 {
		t.Error("unreachable Dist should be -1")
	}
	for _, fn := range []func(){
		func() { rt.NextHop(0, 2) },
		func() { rt.Path(0, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for unreachable destination")
				}
			}()
			fn()
		}()
	}
}

func TestPolarFlyRouting(t *testing.T) {
	// Diameter 2: every pair at distance ≤ 2; non-adjacent pairs route via
	// the unique common neighbor (Theorem 6.1).
	pg, err := er.New(5)
	if err != nil {
		t.Fatal(err)
	}
	rt := New(pg.G)
	n := pg.N()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			d := rt.Dist(u, v)
			if d < 1 || d > 2 {
				t.Fatalf("Dist(%d,%d) = %d", u, v, d)
			}
			p := rt.Path(u, v)
			if len(p) != d+1 {
				t.Fatalf("Path(%d,%d) has %d vertices for distance %d", u, v, len(p), d)
			}
			for i := 1; i < len(p); i++ {
				if !pg.G.HasEdge(p[i-1], p[i]) {
					t.Fatalf("Path(%d,%d) uses non-edge (%d,%d)", u, v, p[i-1], p[i])
				}
			}
			if d == 2 {
				// The intermediate must be the unique common neighbor.
				if pg.G.CountCommonNeighbors(u, v) != 1 {
					t.Fatalf("(%d,%d) should have exactly one common neighbor", u, v)
				}
				if !pg.G.HasEdge(u, p[1]) || !pg.G.HasEdge(p[1], v) {
					t.Fatalf("bad intermediate for (%d,%d)", u, v)
				}
			}
		}
	}
	avg := rt.AvgPathLength()
	if avg <= 1 || avg >= 2 {
		t.Errorf("AvgPathLength = %f, expected in (1,2)", avg)
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	// Square: two shortest paths 0→3; BFS with ascending neighbors pins
	// the intermediate to 1.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	rt := New(g)
	p := rt.Path(0, 3)
	if p[1] != 1 {
		t.Errorf("tie-break chose %d, want 1", p[1])
	}
}

func TestAvgPathLengthTrivial(t *testing.T) {
	if New(graph.New(1)).AvgPathLength() != 0 {
		t.Error("single vertex avg should be 0")
	}
}
