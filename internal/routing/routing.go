// Package routing provides deterministic shortest-path routing tables for
// the simulated fabric. On PolarFly the diameter is 2 and any two
// non-adjacent routers have exactly one common neighbor (Theorem 6.1), so
// minimal routing is unique; for general graphs the table breaks ties
// toward the smallest-numbered next hop, keeping every simulation
// reproducible.
package routing

import (
	"fmt"

	"polarfly/internal/graph"
)

// Table holds all-pairs next-hop routing for one topology.
type Table struct {
	g    *graph.Graph
	next [][]int // next[u][v] = first hop from u toward v; -1 unreachable; u for u==v
	dist [][]int
}

// New builds the routing table by BFS from every source, visiting neighbors
// in ascending order so the resulting paths are deterministic.
func New(g *graph.Graph) *Table {
	n := g.N()
	t := &Table{g: g, next: make([][]int, n), dist: make([][]int, n)}
	for src := 0; src < n; src++ {
		next := make([]int, n)
		dist := make([]int, n)
		for i := range next {
			next[i] = -1
			dist[i] = -1
		}
		next[src] = src
		dist[src] = 0
		queue := []int{src}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range g.Neighbors(v) {
				if dist[u] != -1 {
					continue
				}
				dist[u] = dist[v] + 1
				if v == src {
					next[u] = u
				} else {
					next[u] = next[v]
				}
				queue = append(queue, u)
			}
		}
		t.next[src] = next
		t.dist[src] = dist
	}
	return t
}

// Dist returns the hop distance from u to v (-1 if unreachable).
func (t *Table) Dist(u, v int) int { return t.dist[u][v] }

// NextHop returns the first hop on the path from u to v. It panics if v is
// unreachable from u; NextHop(u, u) == u.
func (t *Table) NextHop(u, v int) int {
	h := t.next[u][v]
	if h == -1 {
		panic(fmt.Sprintf("routing: %d unreachable from %d", v, u))
	}
	return h
}

// Path returns the full vertex sequence from u to v, inclusive.
func (t *Table) Path(u, v int) []int {
	if t.dist[u][v] == -1 {
		panic(fmt.Sprintf("routing: %d unreachable from %d", v, u))
	}
	path := []int{u}
	for u != v {
		u = t.NextHop(u, v)
		path = append(path, u)
	}
	return path
}

// Links returns the directed links (consecutive vertex pairs) of the path
// from u to v.
func (t *Table) Links(u, v int) [][2]int {
	p := t.Path(u, v)
	out := make([][2]int, 0, len(p)-1)
	for i := 1; i < len(p); i++ {
		out = append(out, [2]int{p[i-1], p[i]})
	}
	return out
}

// AvgPathLength returns the mean hop distance over ordered distinct pairs —
// the dilation a host-based collective pays on this topology.
func (t *Table) AvgPathLength() float64 {
	n := t.g.N()
	if n < 2 {
		return 0
	}
	sum := 0
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				sum += t.dist[u][v]
			}
		}
	}
	return float64(sum) / float64(n*(n-1))
}
