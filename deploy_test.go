package polarfly

import (
	"bytes"
	"strings"
	"testing"

	"polarfly/internal/workload"
)

func TestRouterConfigs(t *testing.T) {
	s := sys(t, 5)
	for _, m := range []Method{SingleTree, LowDepth, Hamiltonian} {
		p, err := s.Plan(m)
		if err != nil {
			t.Fatal(err)
		}
		cfgs, err := s.RouterConfigs(p)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(cfgs) != s.Nodes() {
			t.Fatalf("%v: %d configs", m, len(cfgs))
		}
		roots := 0
		for _, c := range cfgs {
			if len(c.Trees) != len(p.Trees) {
				t.Fatalf("%v: router %d has %d tree configs", m, c.Router, len(c.Trees))
			}
			for ti, tc := range c.Trees {
				switch tc.Tree {
				case "root":
					roots++
					if tc.ReduceOut != nil || tc.BcastIn != nil {
						t.Fatalf("%v: root with upstream", m)
					}
				case "leaf", "internal":
					if tc.ReduceOut == nil || tc.BcastIn == nil {
						t.Fatalf("%v: non-root missing upstream", m)
					}
					// Upstream port resolves to the tree parent.
					if got := c.Ports[tc.ReduceOut.Port]; got != p.Trees[ti].Parent[c.Router] {
						t.Fatalf("%v: router %d tree %d upstream port → %d, want %d",
							m, c.Router, ti, got, p.Trees[ti].Parent[c.Router])
					}
				default:
					t.Fatalf("%v: unknown role %q", m, tc.Tree)
				}
			}
		}
		if roots != len(p.Trees) {
			t.Errorf("%v: %d roots for %d trees", m, roots, len(p.Trees))
		}
	}
	// Cross-system guard.
	other := sys(t, 5)
	p, _ := other.Plan(SingleTree)
	if _, err := s.RouterConfigs(p); err == nil {
		t.Error("cross-system plan accepted")
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	s := sys(t, 5)
	for _, m := range []Method{LowDepth, Hamiltonian} {
		p, err := s.Plan(m)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := s.ExportPlan(&buf, p); err != nil {
			t.Fatal(err)
		}
		ts, kind, err := s.ImportForest(&buf)
		if err != nil {
			t.Fatalf("%v: import: %v", m, err)
		}
		if kind != m.String() || len(ts) != len(p.Trees) {
			t.Fatalf("%v: kind=%q trees=%d", m, kind, len(ts))
		}
		// Rebuild a plan from the imported trees and run it.
		p2, err := s.PlanFromTrees(m, ts)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if p2.AggregateBandwidth != p.AggregateBandwidth {
			t.Errorf("%v: bandwidth changed %f → %f", m, p.AggregateBandwidth, p2.AggregateBandwidth)
		}
		inputs := workload.Vectors(s.Nodes(), 48, 50, 41)
		out, _, err := s.Allreduce(p2, inputs, Options{LinkLatency: 2, VCDepth: 4})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		want := Reduce(inputs)
		for k := range want {
			if out[k] != want[k] {
				t.Fatalf("%v: rebuilt plan computes wrong sums", m)
			}
		}
	}
}

func TestExportPlanCrossSystemRejected(t *testing.T) {
	a := sys(t, 3)
	b := sys(t, 3)
	p, _ := a.Plan(SingleTree)
	var buf bytes.Buffer
	if err := b.ExportPlan(&buf, p); err == nil {
		t.Error("cross-system export accepted")
	}
}

func TestExportTopology(t *testing.T) {
	s := sys(t, 3)
	var buf bytes.Buffer
	if err := s.ExportTopology(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"q": 3`) {
		t.Errorf("export missing q: %s", buf.String()[:80])
	}
}

func TestPlanFromTreesRejectsGarbage(t *testing.T) {
	s := sys(t, 3)
	if _, err := s.PlanFromTrees(SingleTree, nil); err == nil {
		t.Error("empty forest accepted")
	}
	bad := []Tree{{Root: 0, Parent: make([]int, s.Nodes())}}
	bad[0].Parent[0] = -1
	for v := 1; v < s.Nodes(); v++ {
		bad[0].Parent[v] = 0 // star — vertex 0 is not adjacent to everyone
	}
	if _, err := s.PlanFromTrees(SingleTree, bad); err == nil {
		t.Error("non-spanning star accepted")
	}
}

func TestImportForestRejectsWrongSize(t *testing.T) {
	s := sys(t, 3)
	doc := `{"version":1,"kind":"x","trees":[{"root":0,"parent":[-1,0]}]}`
	if _, _, err := s.ImportForest(strings.NewReader(doc)); err == nil {
		t.Error("wrong-size forest accepted")
	}
}
