package polarfly

import (
	"testing"

	"polarfly/internal/workload"
)

func TestReduceSingleTree(t *testing.T) {
	s := sys(t, 3)
	inputs := workload.Vectors(s.Nodes(), 64, 100, 21)
	want := Reduce(inputs)
	p, err := s.Plan(SingleTree)
	if err != nil {
		t.Fatal(err)
	}
	segs, stats, err := s.Reduce(p, inputs, Options{LinkLatency: 2, VCDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0].Offset != 0 || len(segs[0].Sum) != 64 {
		t.Fatalf("segments = %+v", segs)
	}
	for k := range want {
		if segs[0].Sum[k] != want[k] {
			t.Fatalf("element %d = %d, want %d", k, segs[0].Sum[k], want[k])
		}
	}
	if stats.Cycles <= 0 {
		t.Error("no cycles recorded")
	}
}

func TestReduceMultiTreeIsReduceScatter(t *testing.T) {
	s := sys(t, 5)
	inputs := workload.Vectors(s.Nodes(), 90, 100, 22)
	want := Reduce(inputs)
	p, err := s.Plan(Hamiltonian)
	if err != nil {
		t.Fatal(err)
	}
	segs, _, err := s.Reduce(p, inputs, Options{LinkLatency: 2, VCDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 3 {
		t.Fatalf("%d segments", len(segs))
	}
	covered := 0
	for _, seg := range segs {
		for k, v := range seg.Sum {
			if v != want[seg.Offset+k] {
				t.Fatalf("segment at root %d wrong", seg.Root)
			}
		}
		covered += len(seg.Sum)
	}
	if covered != 90 {
		t.Errorf("segments cover %d of 90 elements", covered)
	}
}

func TestBroadcastAllTrees(t *testing.T) {
	s := sys(t, 5)
	source := make([]int64, 256)
	for i := range source {
		source[i] = int64(3*i - 17)
	}
	for _, m := range []Method{SingleTree, LowDepth, Hamiltonian} {
		p, err := s.Plan(m)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := s.Broadcast(p, source, Options{LinkLatency: 2, VCDepth: 4})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if stats.Cycles <= 0 {
			t.Errorf("%v: no cycles", m)
		}
	}
	// Multi-tree broadcast beats single-tree (bandwidth aggregation).
	single, _ := s.Plan(SingleTree)
	low, _ := s.Plan(LowDepth)
	big := make([]int64, 2048)
	for i := range big {
		big[i] = int64(i)
	}
	sStats, err := s.Broadcast(single, big, Options{LinkLatency: 2, VCDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	lStats, err := s.Broadcast(low, big, Options{LinkLatency: 2, VCDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if lStats.Cycles >= sStats.Cycles {
		t.Errorf("multi-tree broadcast (%d) not faster than single (%d)", lStats.Cycles, sStats.Cycles)
	}
}

func TestWithoutLinksDegradation(t *testing.T) {
	s := sys(t, 5)
	ham, err := s.Plan(Hamiltonian)
	if err != nil {
		t.Fatal(err)
	}
	// Fail one link of the first tree: plan survives with one fewer tree.
	var failed [2]int
	tr := ham.Trees[0]
	for v, p := range tr.Parent {
		if p >= 0 {
			failed = [2]int{v, p}
			break
		}
	}
	deg, err := ham.WithoutLinks([][2]int{failed})
	if err != nil {
		t.Fatal(err)
	}
	if len(deg.Trees) != len(ham.Trees)-1 {
		t.Errorf("degraded to %d trees, want %d", len(deg.Trees), len(ham.Trees)-1)
	}
	if deg.AggregateBandwidth >= ham.AggregateBandwidth {
		t.Error("degraded bandwidth did not drop")
	}
	// Degraded plan still executes correctly.
	inputs := workload.Vectors(s.Nodes(), 64, 50, 23)
	out, _, err := s.Allreduce(deg, inputs, Options{LinkLatency: 2, VCDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := Reduce(inputs)
	for k := range want {
		if out[k] != want[k] {
			t.Fatal("degraded allreduce wrong")
		}
	}
	// Single-tree plan cannot survive its own link failing.
	single, _ := s.Plan(SingleTree)
	str := single.Trees[0]
	for v, p := range str.Parent {
		if p >= 0 {
			if _, err := single.WithoutLinks([][2]int{{v, p}}); err == nil {
				t.Error("single-tree plan survived its only tree's failure")
			}
			break
		}
	}
}

func TestPlanSubset(t *testing.T) {
	s := sys(t, 9) // 5 disjoint Hamiltonian trees
	ham, err := s.Plan(Hamiltonian)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := ham.Subset([]int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Trees) != 2 || sub.AggregateBandwidth != 2.0 {
		t.Errorf("subset plan: %d trees, %.1f B", len(sub.Trees), sub.AggregateBandwidth)
	}
	// Subset plans still execute correctly.
	inputs := workload.Vectors(s.Nodes(), 64, 50, 31)
	out, _, err := s.Allreduce(sub, inputs, Options{LinkLatency: 2, VCDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := Reduce(inputs)
	for k := range want {
		if out[k] != want[k] {
			t.Fatal("subset allreduce wrong")
		}
	}
	// Errors.
	if _, err := ham.Subset(nil); err == nil {
		t.Error("empty subset accepted")
	}
	if _, err := ham.Subset([]int{0, 0}); err == nil {
		t.Error("duplicate index accepted")
	}
	if _, err := ham.Subset([]int{9}); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestPredictWithLinkCapacities(t *testing.T) {
	s := sys(t, 5)
	ham, err := s.Plan(Hamiltonian)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform fabric matches the plan's own model.
	per, agg := ham.PredictWithLinkCapacities(nil)
	if agg != ham.AggregateBandwidth {
		t.Errorf("uniform aggregate %f vs plan %f", agg, ham.AggregateBandwidth)
	}
	for i := range per {
		if per[i] != ham.PerTreeBandwidth[i] {
			t.Errorf("per-tree mismatch at %d", i)
		}
	}
	// Degrade one link of tree 0 to quarter speed: only tree 0 suffers
	// (edge-disjointness localises the damage).
	tr := ham.Trees[0]
	var link [2]int
	for v, p := range tr.Parent {
		if p >= 0 {
			link = [2]int{v, p}
			break
		}
	}
	per, agg = ham.PredictWithLinkCapacities(map[[2]int]float64{link: 0.25})
	if per[0] != 0.25 {
		t.Errorf("degraded tree bandwidth %f, want 0.25", per[0])
	}
	for i := 1; i < len(per); i++ {
		if per[i] != 1.0 {
			t.Errorf("tree %d affected by another tree's link: %f", i, per[i])
		}
	}
	if agg != ham.AggregateBandwidth-0.75 {
		t.Errorf("aggregate %f", agg)
	}
}

func TestTopologyQueryAPI(t *testing.T) {
	s := sys(t, 5)
	// Neighbors are consistent with Links.
	nbr := s.Neighbors(0)
	if len(nbr) != s.Degree(0) {
		t.Errorf("Neighbors(0) has %d entries, degree %d", len(nbr), s.Degree(0))
	}
	// Paths: adjacent pair → 2 vertices, non-adjacent → 3 via the unique
	// common neighbor (Theorem 6.1).
	for u := 0; u < s.Nodes(); u++ {
		for v := 0; v < s.Nodes(); v++ {
			if u == v {
				continue
			}
			p := s.Path(u, v)
			if p[0] != u || p[len(p)-1] != v {
				t.Fatalf("Path(%d,%d) = %v", u, v, p)
			}
			if len(p) > 3 {
				t.Fatalf("Path(%d,%d) has %d hops on a diameter-2 graph", u, v, len(p)-1)
			}
		}
	}
	// Quadric classification: q+1 quadrics of degree q.
	quadrics := 0
	for v := 0; v < s.Nodes(); v++ {
		if s.IsQuadric(v) {
			quadrics++
			if s.Degree(v) != 5 {
				t.Errorf("quadric %d degree %d", v, s.Degree(v))
			}
		}
	}
	if quadrics != 6 {
		t.Errorf("%d quadrics, want 6", quadrics)
	}
}

func TestCrossSystemGuards(t *testing.T) {
	a := sys(t, 3)
	b := sys(t, 3)
	p, _ := a.Plan(SingleTree)
	inputs := workload.Vectors(b.Nodes(), 4, 10, 1)
	if _, _, err := b.Reduce(p, inputs, DefaultOptions()); err == nil {
		t.Error("cross-system Reduce accepted")
	}
	if _, err := b.Broadcast(p, []int64{1, 2}, DefaultOptions()); err == nil {
		t.Error("cross-system Broadcast accepted")
	}
}
