package polarfly_test

import (
	"fmt"

	"polarfly"
)

// Example builds the smallest PolarFly, plans the optimal edge-disjoint
// embedding and runs a verified Allreduce.
func Example() {
	sys, err := polarfly.New(3) // 13 routers, radix 4
	if err != nil {
		panic(err)
	}
	plan, err := sys.Plan(polarfly.Hamiltonian)
	if err != nil {
		panic(err)
	}
	// Every router contributes the vector [router id, 1].
	inputs := make([][]int64, sys.Nodes())
	for v := range inputs {
		inputs[v] = []int64{int64(v), 1}
	}
	out, _, err := sys.Allreduce(plan, inputs, polarfly.DefaultOptions())
	if err != nil {
		panic(err)
	}
	fmt.Println(out[0], out[1]) // Σ ids = 78, Σ 1 = 13
	// Output: 78 13
}

// ExampleSystem_Plan compares the two multi-tree plans on one instance.
func ExampleSystem_Plan() {
	sys, _ := polarfly.New(5)
	low, _ := sys.Plan(polarfly.LowDepth)
	ham, _ := sys.Plan(polarfly.Hamiltonian)
	fmt.Printf("low-depth: %d trees, depth %d, %.1f of %.1f B\n",
		len(low.Trees), low.MaxDepth, low.AggregateBandwidth, low.OptimalBandwidth)
	fmt.Printf("hamiltonian: %d trees, depth %d, %.1f of %.1f B\n",
		len(ham.Trees), ham.MaxDepth, ham.AggregateBandwidth, ham.OptimalBandwidth)
	// Output:
	// low-depth: 5 trees, depth 3, 2.5 of 3.0 B
	// hamiltonian: 3 trees, depth 15, 3.0 of 3.0 B
}

// ExampleSystem_DifferenceSet reproduces the paper's Figure 2a.
func ExampleSystem_DifferenceSet() {
	sys, _ := polarfly.New(3)
	fmt.Println(sys.DifferenceSet())
	// Output: [0 1 3 9]
}

// ExampleSystem_HamiltonianPath materialises the alternating-sum path of
// colours (0, 1) over S_3.
func ExampleSystem_HamiltonianPath() {
	sys, _ := polarfly.New(3)
	fmt.Println(sys.HamiltonianPath(0, 1))
	// Output: [7 6 8 5 9 4 10 3 11 2 12 1 0]
}

// ExampleFeasibleRadixes enumerates buildable design points.
func ExampleFeasibleRadixes() {
	fmt.Println(polarfly.FeasibleRadixes(3, 15))
	// Output: [3 4 5 6 8 9 10 12 14]
}
