package polarfly

// This file extends the public API beyond Allreduce to the two collective
// phases the embedded trees natively support — Reduce (the up-phase) and
// Broadcast (the down-phase) — and to graceful degradation after link
// failures, which the multi-tree embeddings make possible: a single-tree
// embedding dies with its first failed link, the congestion-2 low-depth
// forest loses at most 2 of q trees, and the edge-disjoint Hamiltonian
// forest loses at most 1.

import (
	"fmt"

	"polarfly/internal/bandwidth"
	"polarfly/internal/core"
	"polarfly/internal/graph"
	"polarfly/internal/netsim"
)

// RootSegment is one tree root's share of a multi-tree Reduce: the root
// router holds the reduced values for elements [Offset, Offset+len(Sum)).
type RootSegment struct {
	Root   int
	Offset int
	Sum    []int64
}

// Reduce streams the element-wise sum up the plan's trees. With a
// single-tree plan the entire reduced vector lands at that tree's root;
// with a multi-tree plan each root ends up owning the sub-vector its tree
// reduced — a reduce-scatter across the tree roots. The segments are
// returned in tree order, verified against the exact sum.
func (s *System) Reduce(p *Plan, inputs [][]int64, opt Options) ([]RootSegment, *Stats, error) {
	if p.sys != s {
		return nil, nil, fmt.Errorf("polarfly: plan belongs to a different system")
	}
	m := 0
	if len(inputs) > 0 {
		m = len(inputs[0])
	}
	split, err := p.Split(m)
	if err != nil {
		return nil, nil, err
	}
	res, err := netsim.Run(netsim.Spec{
		Op:       netsim.OpReduce,
		Topology: p.emb.Topology,
		Forest:   p.emb.Forest,
		Split:    split,
		Inputs:   inputs,
	}, netsim.Config{LinkLatency: opt.LinkLatency, VCDepth: opt.VCDepth})
	if err != nil {
		return nil, nil, err
	}
	want := Reduce(inputs)
	var segs []RootSegment
	off := 0
	for i, t := range p.emb.Forest {
		seg := RootSegment{Root: t.Root, Offset: off, Sum: make([]int64, split[i])}
		copy(seg.Sum, res.Outputs[t.Root][off:off+split[i]])
		for k := range seg.Sum {
			if seg.Sum[k] != want[off+k] {
				return nil, nil, fmt.Errorf("polarfly: internal error: reduce segment %d element %d wrong", i, k)
			}
		}
		segs = append(segs, seg)
		off += split[i]
	}
	st := &Stats{Cycles: res.Cycles, Split: split, FlitsSent: res.FlitsSent, PeakBufferFlits: res.PeakBufferFlits}
	if res.Cycles > 0 {
		st.EffectiveBandwidth = float64(m) / float64(res.Cycles)
	}
	return segs, st, nil
}

// Broadcast distributes the source vector from the plan's tree roots to
// every router, using all trees in parallel: tree i carries the sub-vector
// its bandwidth share earns (so aggregate broadcast bandwidth matches the
// plan's Allreduce bandwidth). Every router ends with the full source
// vector; the returned stats mirror Allreduce's.
func (s *System) Broadcast(p *Plan, source []int64, opt Options) (*Stats, error) {
	if p.sys != s {
		return nil, fmt.Errorf("polarfly: plan belongs to a different system")
	}
	m := len(source)
	split, err := p.Split(m)
	if err != nil {
		return nil, err
	}
	// Stage each tree's segment at its root; other inputs are unused.
	inputs := make([][]int64, s.Nodes())
	for v := range inputs {
		inputs[v] = make([]int64, m)
	}
	off := 0
	for i, t := range p.emb.Forest {
		copy(inputs[t.Root][off:off+split[i]], source[off:off+split[i]])
		off += split[i]
	}
	res, err := netsim.Run(netsim.Spec{
		Op:       netsim.OpBroadcast,
		Topology: p.emb.Topology,
		Forest:   p.emb.Forest,
		Split:    split,
		Inputs:   inputs,
	}, netsim.Config{LinkLatency: opt.LinkLatency, VCDepth: opt.VCDepth})
	if err != nil {
		return nil, err
	}
	for v := range res.Outputs {
		for k := range source {
			if res.Outputs[v][k] != source[k] {
				return nil, fmt.Errorf("polarfly: internal error: broadcast wrong at node %d element %d", v, k)
			}
		}
	}
	st := &Stats{Cycles: res.Cycles, Split: split, FlitsSent: res.FlitsSent, PeakBufferFlits: res.PeakBufferFlits}
	if res.Cycles > 0 {
		st.EffectiveBandwidth = float64(m) / float64(res.Cycles)
	}
	return st, nil
}

// Subset returns a plan restricted to the given tree indices (for example
// to dedicate disjoint Hamiltonian trees to different tenants), with the
// bandwidth model re-evaluated on the subset. Indices must be distinct and
// in range.
func (p *Plan) Subset(indices []int) (*Plan, error) {
	if len(indices) == 0 {
		return nil, fmt.Errorf("polarfly: empty subset")
	}
	deg, err := core.SubsetEmbedding(p.emb, indices)
	if err != nil {
		return nil, err
	}
	out := &Plan{
		Method:             p.Method,
		PerTreeBandwidth:   deg.Model.PerTree,
		AggregateBandwidth: deg.Model.Aggregate,
		OptimalBandwidth:   p.OptimalBandwidth,
		MaxCongestion:      deg.Model.MaxCongestion,
		MaxDepth:           deg.MaxDepth,
		emb:                deg,
		sys:                p.sys,
	}
	for _, t := range deg.Forest {
		out.Trees = append(out.Trees, Tree{Root: t.Root, Parent: append([]int(nil), t.Parent...), Depth: t.MaxDepth()})
	}
	return out, nil
}

// PredictWithLinkCapacities evaluates the plan's Algorithm 1 bandwidth on
// a heterogeneous fabric: caps maps specific undirected links to their
// capacity (in link-bandwidth units); unlisted links default to 1.0. Use
// it to plan around degraded optics or trunked spines without re-deriving
// trees.
func (p *Plan) PredictWithLinkCapacities(caps map[[2]int]float64) (perTree []float64, aggregate float64) {
	es := make([][]graph.Edge, len(p.emb.Forest))
	for i, t := range p.emb.Forest {
		es[i] = t.Edges()
	}
	capMap := make(map[graph.Edge]float64, len(caps))
	for l, c := range caps {
		capMap[graph.NewEdge(l[0], l[1])] = c
	}
	r := bandwidth.WaterfillHeterogeneous(es, capMap, 1.0)
	return r.PerTree, r.Aggregate
}

// WithoutLinks returns a degraded plan that survives the failure of the
// given undirected links by dropping every tree that crosses one, with the
// bandwidth model re-evaluated on the survivors. It errors if no tree
// survives (always the case for a single-tree plan whose link failed).
func (p *Plan) WithoutLinks(failed [][2]int) (*Plan, error) {
	deg, err := core.Degrade(p.emb, failed)
	if err != nil {
		return nil, err
	}
	out := &Plan{
		Method:             p.Method,
		PerTreeBandwidth:   deg.Model.PerTree,
		AggregateBandwidth: deg.Model.Aggregate,
		OptimalBandwidth:   p.OptimalBandwidth,
		MaxCongestion:      deg.Model.MaxCongestion,
		MaxDepth:           deg.MaxDepth,
		emb:                deg,
		sys:                p.sys,
	}
	for _, t := range deg.Forest {
		out.Trees = append(out.Trees, Tree{Root: t.Root, Parent: append([]int(nil), t.Parent...), Depth: t.MaxDepth()})
	}
	return out, nil
}
