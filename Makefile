.PHONY: build test verify

build:
	go build ./...

test:
	go test ./...

# verify is the pre-commit gate: vet + build + race-enabled simulator and
# telemetry tests + the full suite.
verify:
	./scripts/verify.sh
