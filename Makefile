.PHONY: build test lint selfcheck hotcheck verify bench bench-netsim bench-netsim-event bench-smoke scorecard scorecard-q31 scorecard-degraded timeline critpath bench-overhead campaign campaign-smoke

build:
	go build ./...

test:
	go test ./...

# lint runs the project's static-analysis suite (determinism, float
# comparison, enum exhaustiveness, error handling). Exit 1 on findings.
lint:
	go run ./cmd/repolint ./...

# selfcheck runs repolint over its own testdata fixtures at the CLI
# level: every analyzer's bad fixture must fail, every clean fixture
# must pass under the full suite.
selfcheck:
	./scripts/selfcheck.sh

# hotcheck cross-checks the static hotalloc proof against measured
# allocations: reruns the q=11 cycle-loop AND event-loop benchmarks and
# asserts every BenchmarkCycleLoop/BenchmarkEventLoop variant stays at or
# below 1 allocs/op. Fails when the static "allocation-free" verdict and
# the measured numbers disagree — in either direction (a regression, or
# a vacuous proof), and when either loop lacks a measured witness.
hotcheck:
	go run ./cmd/benchreport run -label hotcheck -bench 'CycleLoop|EventLoop' -pkg ./internal/netsim -count 3
	go run ./cmd/benchreport hotcheck -bench BenchmarkCycleLoop,BenchmarkEventLoop -root . BENCH_hotcheck.json

# verify is the pre-commit gate: gofmt + vet + build + repolint (with
# fixture selfcheck) + race-enabled tests for the concurrency-bearing
# packages + the full suite + the measured gates (bench smoke,
# hotcheck, scorecards, timeline).
verify:
	./scripts/verify.sh

# bench runs the full benchmark suite through benchreport (5 repetitions
# for spread statistics) and writes BENCH_local.json at the repo root.
bench:
	go run ./cmd/benchreport run -label local -count 5

# bench-netsim reruns the q=11 hot-loop benchmarks (fault-free and
# faulted) and writes BENCH_netsim-local.json for comparison against the
# committed pre-optimization baseline:
#   go run ./cmd/benchreport compare BENCH_netsim.json BENCH_netsim-local.json
bench-netsim:
	go run ./cmd/benchreport run -label netsim-local -bench HotLoop -pkg ./internal/netsim -count 5

# bench-netsim-event reruns the event-engine benchmarks (the q=11 event
# loop and the q=31 cycle-vs-event scale point) and writes
# BENCH_netsim-event-local.json for comparison against the committed
# baseline. The wide threshold absorbs runner drift while still failing
# if the event engine's order-of-magnitude advantage at q=31 evaporates:
#   go run ./cmd/benchreport compare -threshold 2.0 BENCH_netsim-event.json BENCH_netsim-event-local.json
bench-netsim-event:
	go run ./cmd/benchreport run -label netsim-event-local -bench 'EventLoop|EngineScale' -pkg ./internal/netsim -count 3

# bench-smoke is the CI-sized variant: one iteration per benchmark, just
# enough to prove the pipeline (go test -bench → parser → snapshot)
# stays healthy. Writes BENCH_smoke.json.
bench-smoke:
	go run ./cmd/benchreport run -label smoke -count 1 -benchtime 1x

# scorecard sweeps q ∈ {3,5,7,11} through the cycle simulator and checks
# measured bandwidth against the Algorithm 1 model and the Theorem
# 7.6 / 7.19 floors. Writes BENCH_scorecard.json; exits 1 on violation.
scorecard:
	go run ./cmd/benchreport scorecard

# scorecard-q31 runs the full §7.3-scale design point: the q=31 (N=993)
# sweep on the event engine, gated against the Theorem 7.6 / 7.19 floors
# exactly like the main scorecard. The Hamiltonian fill transient grows
# with tree depth (N−1)/2 = 496, so the vector scales up with q to keep
# the steady state dominant (m=196608 lands the point at −7.5% of the
# Theorem 7.19 floor; the default m=16384 would sit at −49%). Writes
# BENCH_q31.json; exits 1 on violation. CI regenerates it and
# byte-compares against the committed snapshot (engine choice never
# changes a point). Budget ~20 min single-core: ~8·10⁸ trace events per
# embedding stream through the obsv collector.
scorecard-q31:
	go run ./cmd/benchreport scorecard -q 31 -m 196608 -engine event -label q31

# scorecard-degraded fails the worst-case link mid-reduction for every
# embedding and gates the simulator's measured post-recovery bandwidth
# against the core.Degrade analytical prediction. Writes
# BENCH_degraded.json; exits 1 on violation.
scorecard-degraded:
	go run ./cmd/benchreport scorecard -degraded -label degraded

# timeline runs the streaming-telemetry gate at the default point (q=7,
# m=16384): every embedding simulated with the tsdb sampler/analyzer
# attached, bound violations and footprint checked. Writes
# TIMELINE_local.json; exits 1 on violation.
timeline:
	go run ./cmd/benchreport timeline -label local

# critpath runs the causal critical-path sweep at the default point
# (q ∈ {3,5,7,11}, m=16384, worst-case link failed at cycle 2000 in the
# faulted half) and gates on exact per-cycle blame conservation.
# Writes CRITPATH_scorecard.json; exits 1 on violation.
critpath:
	go run ./cmd/benchreport critpath -label scorecard

# campaign runs the full seeded chaos campaign: 64 randomized fault
# plans per design point over q ∈ {3,5,7,11} × {low-depth, hamiltonian}
# (512 runs), checking the per-run invariants (exact outputs, flit
# conservation, exact critpath blame, Degrade-predicted bandwidth,
# classified sentinels). Writes CAMPAIGN_scorecard.json; exits 1 on any
# violation.
campaign:
	go run ./cmd/benchreport campaign -label scorecard

# campaign-smoke is the CI-sized variant: q=5 only, 16 plans per
# embedding. Writes CAMPAIGN_smoke.json; exits 1 on any violation.
campaign-smoke:
	go run ./cmd/benchreport campaign -q 5 -runs 16 -m 1024 -label smoke

# bench-overhead measures the sampled vs unsampled hot-loop benchmark
# pairs into one snapshot and gates the sampling overhead at 5% median
# ns/op. Writes BENCH_overhead.json.
bench-overhead:
	go run ./cmd/benchreport run -label overhead -bench HotLoop -pkg ./internal/netsim,./internal/tsdb -count 5
	go run ./cmd/benchreport overhead BENCH_overhead.json
