.PHONY: build test lint verify

build:
	go build ./...

test:
	go test ./...

# lint runs the project's static-analysis suite (determinism, float
# comparison, enum exhaustiveness, error handling). Exit 1 on findings.
lint:
	go run ./cmd/repolint ./...

# verify is the pre-commit gate: vet + build + repolint + race-enabled
# tests for the concurrency-bearing packages + the full suite.
verify:
	./scripts/verify.sh
