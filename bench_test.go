package polarfly

// This file is the benchmark harness for the paper's evaluation artifacts:
// one benchmark per table and figure (Table 1, Figure 1, Figure 2, Table 2,
// Figure 4, Figures 5a/5b, the §7.3 disjoint-path sweep) plus the headline
// simulated-Allreduce comparison and the host-based baselines. Run with
//
//	go test -bench=. -benchmem
//
// Each benchmark regenerates the corresponding artifact from scratch, so
// ns/op measures the full reproduction cost.

import (
	"fmt"
	"testing"

	"polarfly/internal/bandwidth"
	"polarfly/internal/core"
	"polarfly/internal/er"
	"polarfly/internal/netsim"
	"polarfly/internal/singer"
	"polarfly/internal/trees"
	"polarfly/internal/workload"
)

// BenchmarkTable1Classification regenerates Table 1 (vertex classes and
// per-class neighborhood counts) for a mid-size design point.
func BenchmarkTable1Classification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		row, err := core.Table1(11)
		if err != nil {
			b.Fatal(err)
		}
		if row.W != 12 {
			b.Fatal("wrong quadric count")
		}
	}
}

// BenchmarkFig1Layout regenerates the Figure 1 layout (q=11 clusters).
func BenchmarkFig1Layout(b *testing.B) {
	pg, err := er.New(11)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := er.NewLayout(pg, -1)
		if err != nil {
			b.Fatal(err)
		}
		if l.NumClusters() != 11 {
			b.Fatal("wrong cluster count")
		}
	}
}

// BenchmarkFig2DifferenceSets regenerates the Figure 2 difference sets.
func BenchmarkFig2DifferenceSets(b *testing.B) {
	for _, q := range []int{3, 4} {
		b.Run(fmt.Sprintf("q=%d", q), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d, err := singer.DifferenceSet(q)
				if err != nil {
					b.Fatal(err)
				}
				if len(d) != q+1 {
					b.Fatal("wrong size")
				}
			}
		})
	}
}

// BenchmarkTable2NonHamiltonianPaths regenerates Table 2 (q=4).
func BenchmarkTable2NonHamiltonianPaths(b *testing.B) {
	s, err := singer.New(4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := s.NonHamiltonianMaximalPaths()
		if len(rows) != 4 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkFig4DisjointHamiltonians regenerates the Figure 4 path sets.
func BenchmarkFig4DisjointHamiltonians(b *testing.B) {
	for _, q := range []int{3, 4} {
		b.Run(fmt.Sprintf("q=%d", q), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d, err := core.Figure4(q, core.DefaultMISTries, core.DefaultSeed)
				if err != nil {
					b.Fatal(err)
				}
				if len(d.Pairs) != 2 {
					b.Fatal("wrong set size")
				}
			}
		})
	}
}

// BenchmarkFig5aBandwidthSweep regenerates the Figure 5a series: normalized
// Allreduce bandwidth of both solutions over the full radix range [3,129],
// running the real §7.3 disjoint-Hamiltonian search at every point.
func BenchmarkFig5aBandwidthSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := core.Figure5(3, 130, 9, core.DefaultMISTries, core.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 44 {
			b.Fatalf("%d sweep points, want 44", len(rows))
		}
	}
}

// BenchmarkFig5bDepthSweep regenerates the Figure 5b depth series.
func BenchmarkFig5bDepthSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := workload.RadixSweep(3, 130)
		for _, pt := range pts {
			if (pt.N-1)/2 < 3 && pt.Q > 2 {
				b.Fatal("depth ordering violated")
			}
		}
	}
}

// BenchmarkSection73DisjointSweep re-runs the §7.3 verification up to q=64
// (the full q<128 sweep runs in the test suite).
func BenchmarkSection73DisjointSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := core.DisjointSweep(64, 30, core.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.Success {
				b.Fatalf("q=%d failed", r.Q)
			}
		}
	}
}

// benchSim runs the headline simulated Allreduce for one embedding.
func benchSim(b *testing.B, kind core.EmbeddingKind, q, m int) {
	inst, err := core.NewInstance(q)
	if err != nil {
		b.Fatal(err)
	}
	e, err := inst.Embed(kind)
	if err != nil {
		b.Fatal(err)
	}
	inputs := workload.Vectors(inst.N(), m, 1000, 42)
	cfg := netsim.Config{LinkLatency: 5, VCDepth: 8}
	b.SetBytes(int64(m) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := inst.Allreduce(e, inputs, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(m)/float64(res.Cycles), "elem/cycle")
	}
}

// BenchmarkSimulatedAllreduce is the headline comparison: the same
// Allreduce under the three embeddings (Figure 5's bandwidth story,
// measured end-to-end in the cycle simulator).
func BenchmarkSimulatedAllreduce(b *testing.B) {
	const q, m = 7, 2048
	b.Run("single-tree", func(b *testing.B) { benchSim(b, core.SingleTree, q, m) })
	b.Run("low-depth", func(b *testing.B) { benchSim(b, core.LowDepth, q, m) })
	b.Run("hamiltonian", func(b *testing.B) { benchSim(b, core.Hamiltonian, q, m) })
}

// BenchmarkHostBaselines runs the host-based algorithms the paper compares
// against (§4.2, §8) on ER_5.
func BenchmarkHostBaselines(b *testing.B) {
	for _, alg := range []string{"ring", "recursive-doubling", "rabenseifner"} {
		b.Run(alg, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := core.HostComparison(5, 2048, 500, 3, 1, 42)
				if err != nil {
					b.Fatal(err)
				}
				_ = rows
			}
		})
	}
}

// BenchmarkWaterfill measures the Algorithm 1 model itself on the q=11
// low-depth forest.
func BenchmarkWaterfill(b *testing.B) {
	pg, err := er.New(11)
	if err != nil {
		b.Fatal(err)
	}
	l, err := er.NewLayout(pg, -1)
	if err != nil {
		b.Fatal(err)
	}
	forest, err := trees.LowDepthForest(l)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := bandwidth.ForForest(forest, 1.0)
		if r.Aggregate < 5.5-1e-9 {
			b.Fatal("bandwidth below bound")
		}
	}
}

// BenchmarkPlanConstruction measures end-user plan derivation cost.
func BenchmarkPlanConstruction(b *testing.B) {
	sys, err := New(11)
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range []Method{LowDepth, Hamiltonian} {
		b.Run(m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sys.Plan(m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationRandomForest quantifies the §3 design choice: random
// spanning trees vs the coordinated Algorithm 3 forest.
func BenchmarkAblationRandomForest(b *testing.B) {
	for i := 0; i < b.N; i++ {
		row, err := core.RandomForestComparison(11, core.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		if row.RandomBW >= row.CoordinatedBW {
			b.Fatal("ablation inverted")
		}
		b.ReportMetric(row.CoordinatedBW/row.RandomBW, "coord/rand")
	}
}

// BenchmarkAblationVCDepth sweeps the credit-loop buffer size (§1.2's
// latency-bandwidth-product memory argument).
func BenchmarkAblationVCDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := core.VCDepthSweep(5, 800, 8, []int{1, 4, 16}, core.LowDepth, core.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].Cycles)/float64(rows[len(rows)-1].Cycles), "slowdown@depth1")
	}
}

// BenchmarkAblationEngineRate sweeps the router arithmetic throughput
// (§5.1's multiple-reductions-at-link-rate assumption).
func BenchmarkAblationEngineRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := core.EngineRateSweep(5, 800, 3, []int{1, 0}, core.LowDepth, core.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].Cycles)/float64(rows[1].Cycles), "slowdown@rate1")
	}
}

// BenchmarkFailureTolerance measures the single-link worst-case analysis
// across embeddings (the redundancy payoff of multiple trees).
func BenchmarkFailureTolerance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := core.FailureTolerance(7)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatal("unexpected rows")
		}
	}
}

// BenchmarkTopologyComparison regenerates the PolarFly-vs-torus positioning
// table (§1.2/§1.3).
func BenchmarkTopologyComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := core.TopologyComparison(11, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) < 3 {
			b.Fatal("missing rows")
		}
	}
}

// BenchmarkTopologyConstruction measures ER_q generation across scales.
func BenchmarkTopologyConstruction(b *testing.B) {
	for _, q := range []int{7, 13, 19} {
		b.Run(fmt.Sprintf("q=%d", q), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := er.New(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
