// figures regenerates every table and figure of the paper's evaluation.
//
// Usage:
//
//	figures -exp table1          # Table 1 (vertex classes), q sweep
//	figures -exp fig1            # Figure 1 (layout, q=11 by default)
//	figures -exp fig2            # Figure 2 (Singer sets for q=3 and q=4)
//	figures -exp table2          # Table 2 (non-Hamiltonian paths of S_4)
//	figures -exp fig4            # Figure 4 (edge-disjoint Hamiltonians, q=3,4)
//	figures -exp fig5a           # Figure 5a (normalized bandwidth sweep)
//	figures -exp fig5b           # Figure 5b (tree depth sweep)
//	figures -exp mis             # §7.3 disjoint-Hamiltonian verification sweep
//	figures -exp ablation        # design-decision ablations (§3, §4.4, §5.1)
//	figures -exp overlap         # training-step compute/comm overlap
//	figures -exp steadystate     # sustained bandwidth with fill factored out
//	figures -exp topologies      # PolarFly vs comparable tori (§1.2/§1.3)
//	figures -exp sim             # headline simulation comparison
//	figures -exp all             # everything above
package main

import (
	"flag"
	"fmt"
	"os"

	"polarfly/internal/core"
	"polarfly/internal/netsim"
	"polarfly/internal/report"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: table1|fig1|fig2|table2|fig4|fig5a|fig5b|mis|ablation|overlap|steadystate|topologies|sim|all")
	q := flag.Int("q", 11, "q for fig1/sim")
	m := flag.Int("m", 4096, "vector length for sim")
	hiRadix := flag.Int("hi-radix", 130, "sweep upper radix for fig5a/fig5b/mis")
	constructive := flag.Int("constructive", 13, "build forests constructively up to this q in fig5a")
	csv := flag.Bool("csv", false, "emit sweep experiments (fig5a, fig5b, mis) as CSV")
	plot := flag.Bool("plot", false, "render fig5a/fig5b as ASCII charts (the paper's figure shapes)")
	flag.Parse()

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("== %s ==\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("table1", func() error {
		fmt.Printf("%4s %6s %8s %8s | per-vertex neighbor counts (W,V1,V2)\n", "q", "|W|", "|V1|", "|V2|")
		for _, qq := range []int{3, 5, 7, 9, 11, 13} {
			row, err := core.Table1(qq)
			if err != nil {
				return err
			}
			fmt.Printf("%4d %6d %8d %8d | W:%v V1:%v V2:%v\n",
				qq, row.W, row.V1, row.V2, row.QuadricNbrs, row.V1Nbrs, row.V2Nbrs)
		}
		return nil
	})

	run("fig1", func() error {
		inst, err := core.NewInstance(*q)
		if err != nil {
			return err
		}
		if inst.Layout == nil {
			return fmt.Errorf("fig1 needs odd q, got %d", *q)
		}
		l := inst.Layout
		fmt.Printf("PolarFly layout, q=%d: starter quadric %d, %d clusters of %d vertices\n",
			*q, l.Starter, l.NumClusters(), *q)
		fmt.Printf("edges W↔C_i: %d each (Property 2); edges C_i↔C_j: %d each (Property 3)\n",
			l.EdgesToQuadricCluster(0), l.EdgesBetweenClusters(0, 1))
		for ci := range l.Clusters {
			fmt.Printf("C_%-2d center=%-4d non-starter quadric w_%d=%d\n", ci, l.Centers[ci], ci, l.QuadricOfCenter[ci])
		}
		return nil
	})

	run("fig2", func() error {
		for _, qq := range []int{3, 4} {
			d, err := core.Figure2(qq)
			if err != nil {
				return err
			}
			fmt.Printf("q=%d N=%d: D=%v  reflection points=%v\n", qq, d.N, d.D, d.Reflections)
		}
		return nil
	})

	run("table2", func() error {
		rows, err := core.Table2(4)
		if err != nil {
			return err
		}
		fmt.Printf("%4s %4s %6s %4s %6s %6s\n", "d0", "d1", "gcd", "k", "b_1", "b_k")
		for _, r := range rows {
			fmt.Printf("%4d %4d %6d %4d %6d %6d\n", r.D0, r.D1, r.GCD, r.K, r.Start, r.End)
		}
		return nil
	})

	run("fig4", func() error {
		for _, qq := range []int{3, 4} {
			d, err := core.Figure4(qq, core.DefaultMISTries, core.DefaultSeed)
			if err != nil {
				return err
			}
			fmt.Printf("q=%d: %d edge-disjoint Hamiltonian paths\n", qq, len(d.Pairs))
			for i, p := range d.Pairs {
				fmt.Printf("  colours (%d,%d): %v\n", p.D0, p.D1, d.Paths[i])
			}
		}
		return nil
	})

	fig5 := func(series string) func() error {
		return func() error {
			rows, err := core.Figure5(3, *hiRadix, *constructive, core.DefaultMISTries, core.DefaultSeed)
			if err != nil {
				return err
			}
			if *plot {
				ticks := make([]string, len(rows))
				low := make([]float64, len(rows))
				ham := make([]float64, len(rows))
				for i, r := range rows {
					ticks[i] = fmt.Sprint(r.Radix)
					if series == "a" {
						low[i], ham[i] = r.LowDepthNorm, r.HamiltonianNorm
					} else {
						low[i], ham[i] = float64(r.LowDepthDepth), float64(r.HamiltonianDepth)
					}
				}
				c := &report.Chart{
					XLabel: "radix q+1",
					XTicks: ticks,
					Series: []report.Series{
						{Name: "low-depth", Values: low, Marker: 'o'},
						{Name: "hamiltonian", Values: ham, Marker: '+'},
					},
					Height: 14,
				}
				if series == "a" {
					c.Title = "Figure 5a: Allreduce bandwidth normalized to optimal"
					c.YMax = 1.05
				} else {
					c.Title = "Figure 5b: tree depth (latency proxy)"
				}
				fmt.Print(c.Render())
				return nil
			}
			switch {
			case series == "a" && *csv:
				fmt.Println("q,radix,optimal_bw,lowdepth_norm,hamiltonian_norm,constructive")
				for _, r := range rows {
					fmt.Printf("%d,%d,%g,%g,%g,%v\n", r.Q, r.Radix, r.OptimalBW, r.LowDepthNorm, r.HamiltonianNorm, r.Constructive)
				}
			case series == "a":
				fmt.Printf("%4s %6s %10s %12s %12s %12s\n", "q", "radix", "optimal B", "lowdepth/opt", "hamilton/opt", "constructive")
				for _, r := range rows {
					fmt.Printf("%4d %6d %10.1f %12.4f %12.4f %12v\n",
						r.Q, r.Radix, r.OptimalBW, r.LowDepthNorm, r.HamiltonianNorm, r.Constructive)
				}
			case *csv:
				fmt.Println("q,radix,n,lowdepth_depth,hamiltonian_depth")
				for _, r := range rows {
					fmt.Printf("%d,%d,%d,%d,%d\n", r.Q, r.Radix, r.N, r.LowDepthDepth, r.HamiltonianDepth)
				}
			default:
				fmt.Printf("%4s %6s %8s %14s %16s\n", "q", "radix", "N", "lowdepth depth", "hamilton depth")
				for _, r := range rows {
					fmt.Printf("%4d %6d %8d %14d %16d\n", r.Q, r.Radix, r.N, r.LowDepthDepth, r.HamiltonianDepth)
				}
			}
			return nil
		}
	}
	run("fig5a", fig5("a"))
	run("fig5b", fig5("b"))

	run("mis", func() error {
		rows, err := core.DisjointSweep(*hiRadix-1, core.DefaultMISTries, core.DefaultSeed)
		if err != nil {
			return err
		}
		if *csv {
			fmt.Println("q,target,found,tries,success")
			for _, r := range rows {
				fmt.Printf("%d,%d,%d,%d,%v\n", r.Q, r.Target, r.Found, r.TriesUsed, r.Success)
			}
			return nil
		}
		fmt.Printf("%4s %8s %8s %8s %8s\n", "q", "target", "found", "tries", "ok")
		for _, r := range rows {
			fmt.Printf("%4d %8d %8d %8d %8v\n", r.Q, r.Target, r.Found, r.TriesUsed, r.Success)
		}
		return nil
	})

	run("ablation", func() error {
		fmt.Println("-- random vs coordinated forest (§3) --")
		fmt.Printf("%4s %4s %12s %10s %10s %10s %12s\n",
			"q", "k", "coord BW", "rand BW", "coord C", "rand C", "rand ports")
		for _, qq := range []int{5, 7, 9, 11, 13} {
			row, err := core.RandomForestComparison(qq, core.DefaultSeed)
			if err != nil {
				return err
			}
			fmt.Printf("%4d %4d %12.3f %10.3f %10d %10d %12d\n",
				row.Q, row.K, row.CoordinatedBW, row.RandomBW,
				row.CoordinatedCong, row.RandomCong, row.PortStreamsRandom)
		}

		fmt.Println("\n-- VC depth sweep (credit throttling, §1.2), q=5 m=800 latency=8 --")
		rows, err := core.VCDepthSweep(5, 800, 8, []int{1, 2, 4, 8, 16}, core.LowDepth, core.DefaultSeed)
		if err != nil {
			return err
		}
		fmt.Printf("%8s %8s %12s\n", "VCdepth", "cycles", "elem/cycle")
		for _, r := range rows {
			fmt.Printf("%8d %8d %12.3f\n", r.Param, r.Cycles, r.MeasuredBW)
		}

		fmt.Println("\n-- reduction engine rate sweep (§5.1), q=5 m=800 --")
		rows, err = core.EngineRateSweep(5, 800, 3, []int{1, 2, 3, 5, 0}, core.LowDepth, core.DefaultSeed)
		if err != nil {
			return err
		}
		fmt.Printf("%8s %8s %12s\n", "rate", "cycles", "elem/cycle")
		for _, r := range rows {
			label := fmt.Sprintf("%d", r.Param)
			if r.Param == 0 {
				label = "inf"
			}
			fmt.Printf("%8s %8d %12.3f\n", label, r.Cycles, r.MeasuredBW)
		}

		fmt.Println("\n-- depth-2 vs depth-3 trees (the extra-hop decision) --")
		fmt.Printf("%4s %12s %12s %10s %10s\n", "q", "depth2 BW", "depth3 BW", "d2 cong", "d3 cong")
		for _, qq := range []int{5, 7, 9, 11, 13} {
			row, err := core.DepthTwoComparison(qq)
			if err != nil {
				return err
			}
			fmt.Printf("%4d %12.3f %12.3f %10d %10d\n",
				row.Q, row.DepthTwoBW, row.DepthThreeBW, row.DepthTwoCong, row.DepthThreeCong)
		}

		fmt.Println("\n-- SHARP-style logical trees vs physical embedding (§4.4), q=9 --")
		fmt.Printf("%-12s %10s %12s %14s\n", "shape", "max load", "bandwidth", "phys. depth")
		lt, err := core.LogicalTreeComparison(9)
		if err != nil {
			return err
		}
		for _, r := range lt {
			fmt.Printf("%-12s %10d %12.3f %14d\n", r.Shape, r.MaxLoad, r.Bandwidth, r.PhysicalDepth)
		}
		fmt.Printf("%-12s %10d %12.3f %14d   (reference)\n", "physical", 1, 1.0, 2)

		fmt.Println("\n-- single-link failure tolerance --")
		fmt.Printf("%-12s %8s %12s %14s\n", "embedding", "trees", "worst lost", "remaining BW")
		ft, err := core.FailureTolerance(9)
		if err != nil {
			return err
		}
		for _, r := range ft {
			fmt.Printf("%-12v %8d %12d %14.2f\n", r.Kind, r.Trees, r.WorstCaseLost, r.WorstCaseRemainingBW)
		}

		fmt.Println("\n-- router resource requirements (§5.1), q=9 --")
		res, err := core.ResourceComparison(9)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %10s %14s %14s\n", "embedding", "VCs/link", "reduce/port", "states/router")
		for _, r := range res {
			fmt.Printf("%-12v %10d %14d %14d\n", r.Kind, r.VCsPerLink, r.ReductionsPerPort, r.MaxStatesPerRouter)
		}
		return nil
	})

	run("overlap", func() error {
		sizes := []int{12288, 7128, 7128, 7128}
		fmt.Printf("training-step overlap, q=%d, %d gradient tensors, 600 compute cycles/layer\n", *q, len(sizes))
		fmt.Printf("%-12s %10s %10s %12s %14s\n", "embedding", "compute", "step", "exposed", "per-layer sync")
		inst, err := core.NewInstance(*q)
		if err != nil {
			return err
		}
		kinds := []core.EmbeddingKind{core.SingleTree, core.Hamiltonian}
		if *q%2 == 1 {
			kinds = []core.EmbeddingKind{core.SingleTree, core.LowDepth, core.Hamiltonian}
		}
		for _, kind := range kinds {
			r, err := core.OverlapStep(inst, kind, sizes, 600, netsim.Config{LinkLatency: 10, VCDepth: 10}, core.DefaultSeed)
			if err != nil {
				return err
			}
			fmt.Printf("%-12v %10d %10d %12d %14v\n",
				kind, r.ComputeCycles, r.StepCycles, r.ExposedCommCycles, r.SyncCycles)
		}
		return nil
	})

	run("steadystate", func() error {
		rows, err := core.SteadyStateComparison(*q, 3000, netsim.Config{LinkLatency: 3, VCDepth: 6}, core.DefaultSeed)
		if err != nil {
			return err
		}
		fmt.Printf("steady-state bandwidth (fill factored out), q=%d\n", *q)
		fmt.Printf("%-12s %10s %12s %10s\n", "embedding", "model B", "sustained B", "fill (cyc)")
		for _, r := range rows {
			fmt.Printf("%-12v %10.3f %12.3f %10.0f\n", r.Kind, r.ModelBW, r.Rate, r.Fill)
		}
		return nil
	})

	run("topologies", func() error {
		rows, err := core.TopologyComparison(*q, 0.5)
		if err != nil {
			return err
		}
		fmt.Printf("%-26s %8s %8s %10s %14s %12s\n", "topology", "N", "radix", "diameter", "allreduce BW", "BW/radix")
		for _, r := range rows {
			fmt.Printf("%-26s %8d %8d %10d %14.2f %12.3f\n",
				r.Name, r.N, r.Radix, r.Diameter, r.AllreduceBW, r.BWPerRadix)
		}
		return nil
	})

	run("sim", func() error {
		rows, err := core.SimulationComparison(*q, *m, netsim.Config{LinkLatency: 10, VCDepth: 10}, core.DefaultSeed)
		if err != nil {
			return err
		}
		fmt.Printf("q=%d m=%d\n", *q, *m)
		fmt.Printf("%-12s %10s %10s %8s %8s\n", "embedding", "model B", "meas. B", "cycles", "speedup")
		for _, r := range rows {
			fmt.Printf("%-12v %10.3f %10.3f %8d %7.2fx\n", r.Kind, r.ModelBW, r.MeasuredBW, r.Cycles, r.SpeedupVsOne)
		}
		return nil
	})
}
