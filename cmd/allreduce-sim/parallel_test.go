package main

import (
	"bytes"
	"testing"
)

// TestSweepParallelByteIdentical locks in the parrun ordered-commit
// contract end to end: three full -sweep runs with a 4-worker pool must
// produce stdout and stderr byte-identical to the serial (-parallel 1)
// run. A worker committing out of order, or any shared state between
// sweep points, shows up here as a diff.
func TestSweepParallelByteIdentical(t *testing.T) {
	runOnce := func(parallel string) (string, string) {
		var stdout, stderr bytes.Buffer
		code := run([]string{"-q", "7", "-m", "512", "-sweep", "-parallel", parallel}, &stdout, &stderr)
		if code != 0 {
			t.Fatalf("-parallel %s: exit %d, stderr: %s", parallel, code, stderr.String())
		}
		return stdout.String(), stderr.String()
	}
	serial, serialErr := runOnce("1")
	if serial == "" {
		t.Fatal("sweep produced no output")
	}
	for i := 1; i <= 3; i++ {
		out, errOut := runOnce("4")
		if out != serial {
			t.Fatalf("parallel run %d stdout differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", i, serial, out)
		}
		if errOut != serialErr {
			t.Fatalf("parallel run %d stderr differs from serial", i)
		}
	}
}
