package main

import (
	"bytes"
	"testing"
)

// TestSweepOutputDeterministic locks in PR 1's -sweep determinism fix
// under the repolint tooling: three full runs at q=7 must produce
// byte-identical stdout, including tie-broken winner selection. Any map-
// order leak anywhere in the sweep path (embedding, waterfill, simulator,
// winner pick) shows up here as a diff.
func TestSweepOutputDeterministic(t *testing.T) {
	runOnce := func() (string, string) {
		var stdout, stderr bytes.Buffer
		code := run([]string{"-q", "7", "-m", "128", "-sweep"}, &stdout, &stderr)
		if code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, stderr.String())
		}
		return stdout.String(), stderr.String()
	}
	first, firstErr := runOnce()
	if first == "" {
		t.Fatal("sweep produced no output")
	}
	for i := 2; i <= 3; i++ {
		out, errOut := runOnce()
		if out != first {
			t.Fatalf("run %d stdout differs from run 1:\n--- run 1 ---\n%s\n--- run %d ---\n%s", i, first, i, out)
		}
		if errOut != firstErr {
			t.Fatalf("run %d stderr differs from run 1", i)
		}
	}
}
