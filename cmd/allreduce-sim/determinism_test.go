package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestSweepOutputDeterministic locks in PR 1's -sweep determinism fix
// under the repolint tooling: three full runs at q=7 must produce
// byte-identical stdout, including tie-broken winner selection. Any map-
// order leak anywhere in the sweep path (embedding, waterfill, simulator,
// winner pick) shows up here as a diff.
func TestSweepOutputDeterministic(t *testing.T) {
	runOnce := func() (string, string) {
		var stdout, stderr bytes.Buffer
		code := run([]string{"-q", "7", "-m", "128", "-sweep"}, &stdout, &stderr)
		if code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, stderr.String())
		}
		return stdout.String(), stderr.String()
	}
	first, firstErr := runOnce()
	if first == "" {
		t.Fatal("sweep produced no output")
	}
	for i := 2; i <= 3; i++ {
		out, errOut := runOnce()
		if out != first {
			t.Fatalf("run %d stdout differs from run 1:\n--- run 1 ---\n%s\n--- run %d ---\n%s", i, first, i, out)
		}
		if errOut != firstErr {
			t.Fatalf("run %d stderr differs from run 1", i)
		}
	}
}

// TestFaultRunOutputDeterministic is the fault-injection counterpart:
// identical fault flags must produce byte-identical degraded-run tables
// across three full runs — detection, recovery, and re-issue are all
// deterministic. Exercises both the explicit -fail-links path and the
// seeded -fault-seed generator.
func TestFaultRunOutputDeterministic(t *testing.T) {
	cases := map[string][]string{
		"fail-links": {"-q", "7", "-m", "2048", "-latency", "1", "-vc", "4", "-fail-links", "0-49", "-fail-at", "200"},
		"fault-seed": {"-q", "7", "-m", "2048", "-fault-seed", "11", "-fail-at", "150"},
	}
	for name, args := range cases {
		t.Run(name, func(t *testing.T) {
			runOnce := func() (string, string) {
				var stdout, stderr bytes.Buffer
				code := run(args, &stdout, &stderr)
				if code != 0 {
					t.Fatalf("exit %d, stderr: %s", code, stderr.String())
				}
				return stdout.String(), stderr.String()
			}
			first, firstErr := runOnce()
			if !strings.Contains(first, "degraded runs") {
				t.Fatalf("missing degraded-run table:\n%s", first)
			}
			for i := 2; i <= 3; i++ {
				out, errOut := runOnce()
				if out != first {
					t.Fatalf("run %d stdout differs from run 1:\n--- run 1 ---\n%s\n--- run %d ---\n%s", i, first, i, out)
				}
				if errOut != firstErr {
					t.Fatalf("run %d stderr differs from run 1", i)
				}
			}
		})
	}
}

// TestFaultFlagErrors covers the fault-flag validation paths.
func TestFaultFlagErrors(t *testing.T) {
	cases := map[string][]string{
		"combined flags": {"-q", "3", "-fail-links", "0-1", "-fault-seed", "7"},
		"bad link spec":  {"-q", "3", "-fail-links", "zero-one"},
		"bad fail-at":    {"-q", "3", "-fail-links", "0-1", "-fail-at", "0"},
		"missing plan":   {"-q", "3", "-fault-plan", "/nonexistent/plan.json"},
	}
	for name, args := range cases {
		t.Run(name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(args, &stdout, &stderr); code != 1 {
				t.Fatalf("exit %d, want 1; stderr: %s", code, stderr.String())
			}
			if stderr.Len() == 0 {
				t.Error("no diagnostic on stderr")
			}
		})
	}
}
