package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestSweepOutputDeterministic locks in PR 1's -sweep determinism fix
// under the repolint tooling: three full runs at q=7 must produce
// byte-identical stdout, including tie-broken winner selection. Any map-
// order leak anywhere in the sweep path (embedding, waterfill, simulator,
// winner pick) shows up here as a diff.
func TestSweepOutputDeterministic(t *testing.T) {
	runOnce := func() (string, string) {
		var stdout, stderr bytes.Buffer
		code := run([]string{"-q", "7", "-m", "128", "-sweep"}, &stdout, &stderr)
		if code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, stderr.String())
		}
		return stdout.String(), stderr.String()
	}
	first, firstErr := runOnce()
	if first == "" {
		t.Fatal("sweep produced no output")
	}
	for i := 2; i <= 3; i++ {
		out, errOut := runOnce()
		if out != first {
			t.Fatalf("run %d stdout differs from run 1:\n--- run 1 ---\n%s\n--- run %d ---\n%s", i, first, i, out)
		}
		if errOut != firstErr {
			t.Fatalf("run %d stderr differs from run 1", i)
		}
	}
}

// TestFaultRunOutputDeterministic is the fault-injection counterpart:
// identical fault flags must produce byte-identical degraded-run tables
// across three full runs — detection, recovery, and re-issue are all
// deterministic. Exercises both the explicit -fail-links path and the
// seeded -fault-seed generator.
func TestFaultRunOutputDeterministic(t *testing.T) {
	cases := map[string][]string{
		"fail-links": {"-q", "7", "-m", "2048", "-latency", "1", "-vc", "4", "-fail-links", "0-49", "-fail-at", "200"},
		"fault-seed": {"-q", "7", "-m", "2048", "-fault-seed", "11", "-fail-at", "150"},
	}
	for name, args := range cases {
		t.Run(name, func(t *testing.T) {
			runOnce := func() (string, string) {
				var stdout, stderr bytes.Buffer
				code := run(args, &stdout, &stderr)
				if code != 0 {
					t.Fatalf("exit %d, stderr: %s", code, stderr.String())
				}
				return stdout.String(), stderr.String()
			}
			first, firstErr := runOnce()
			if !strings.Contains(first, "degraded runs") {
				t.Fatalf("missing degraded-run table:\n%s", first)
			}
			for i := 2; i <= 3; i++ {
				out, errOut := runOnce()
				if out != first {
					t.Fatalf("run %d stdout differs from run 1:\n--- run 1 ---\n%s\n--- run %d ---\n%s", i, first, i, out)
				}
				if errOut != firstErr {
					t.Fatalf("run %d stderr differs from run 1", i)
				}
			}
		})
	}
}

// TestChaosFaultRunOutputDeterministic covers the correlated-domain
// flags: -fail-routers (router-down expands to every incident link) and
// -chaos-seed (the campaign engine's weighted per-embedding draw). Three
// serial runs must be byte-identical, and a -parallel 4 run must match
// -parallel 1 byte for byte — the degraded-run table renders its rows
// inside the pool's jobs and commits them in embedding order.
func TestChaosFaultRunOutputDeterministic(t *testing.T) {
	cases := map[string]struct {
		args []string
		want string // a substring the table must contain
	}{
		// Router 3 down at cycle 150: on a PolarFly every spanning tree
		// touches every node, so all three embeddings abort all-trees-lost.
		"fail-routers": {
			args: []string{"-q", "5", "-m", "4096", "-latency", "1", "-vc", "4", "-fail-routers", "3", "-fail-at", "150"},
			want: "r3",
		},
		// Seed 42 draws survivable link faults for every embedding at this
		// size, so the table shows real recoveries and measured bandwidth.
		"chaos-seed": {
			args: []string{"-q", "5", "-m", "2048", "-latency", "2", "-vc", "6", "-chaos-seed", "42", "-fail-at", "100"},
			want: "low-depth",
		},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			runOnce := func(parallel string) (string, string) {
				var stdout, stderr bytes.Buffer
				code := run(append(append([]string{}, tc.args...), "-parallel", parallel), &stdout, &stderr)
				if code != 0 {
					t.Fatalf("exit %d, stderr: %s", code, stderr.String())
				}
				return stdout.String(), stderr.String()
			}
			first, firstErr := runOnce("1")
			if !strings.Contains(first, "degraded runs") {
				t.Fatalf("missing degraded-run table:\n%s", first)
			}
			if !strings.Contains(first, tc.want) {
				t.Fatalf("table missing %q:\n%s", tc.want, first)
			}
			for i := 2; i <= 3; i++ {
				out, errOut := runOnce("1")
				if out != first {
					t.Fatalf("run %d stdout differs from run 1:\n--- run 1 ---\n%s\n--- run %d ---\n%s", i, first, i, out)
				}
				if errOut != firstErr {
					t.Fatalf("run %d stderr differs from run 1", i)
				}
			}
			par, parErr := runOnce("4")
			if par != first {
				t.Fatalf("-parallel 4 stdout differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", first, par)
			}
			if parErr != firstErr {
				t.Fatal("-parallel 4 stderr differs from serial")
			}
		})
	}
}

// TestFaultFlagErrors covers the fault-flag validation paths.
func TestFaultFlagErrors(t *testing.T) {
	cases := map[string][]string{
		"combined flags":       {"-q", "3", "-fail-links", "0-1", "-fault-seed", "7"},
		"combined chaos flags": {"-q", "3", "-fail-routers", "2", "-chaos-seed", "9"},
		"bad link spec":        {"-q", "3", "-fail-links", "zero-one"},
		"bad router spec":      {"-q", "3", "-fail-routers", "two"},
		"bad fail-at":          {"-q", "3", "-fail-links", "0-1", "-fail-at", "0"},
		"bad chaos fail-at":    {"-q", "3", "-chaos-seed", "9", "-fail-at", "0"},
		"missing plan":         {"-q", "3", "-fault-plan", "/nonexistent/plan.json"},
	}
	for name, args := range cases {
		t.Run(name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(args, &stdout, &stderr); code != 1 {
				t.Fatalf("exit %d, want 1; stderr: %s", code, stderr.String())
			}
			if stderr.Len() == 0 {
				t.Error("no diagnostic on stderr")
			}
		})
	}
}

// TestTimelineOutputDeterministic locks in the -ts-out contract: three
// runs with the telemetry sampler attached and a 4-worker pool must
// produce byte-identical stdout AND a byte-identical timeline file. The
// rigs are wired serially before the pool dispatches, so any ordering
// leak from the parallel comparison shows up here as a diff.
func TestTimelineOutputDeterministic(t *testing.T) {
	dir := t.TempDir()
	runOnce := func(i int) (string, string) {
		path := filepath.Join(dir, fmt.Sprintf("tl%d.md", i))
		var stdout, stderr bytes.Buffer
		code := run([]string{"-q", "5", "-m", "1024", "-latency", "1", "-vc", "4",
			"-ts-out", path, "-sample-every", "32", "-parallel", "4"}, &stdout, &stderr)
		if code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, stderr.String())
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// The stdout mentions the per-run file name; normalise it so the
		// three runs compare equal.
		out := strings.ReplaceAll(stdout.String(), path, "TS_OUT")
		return out, string(data)
	}
	firstOut, firstTL := runOnce(1)
	if !strings.Contains(firstTL, "## Telemetry timeline — q=5") {
		t.Fatalf("timeline file missing header:\n%s", firstTL)
	}
	if !strings.Contains(firstOut, "telemetry timeline written to TS_OUT") {
		t.Fatalf("stdout missing timeline notice:\n%s", firstOut)
	}
	for i := 2; i <= 3; i++ {
		out, tl := runOnce(i)
		if out != firstOut {
			t.Fatalf("run %d stdout differs from run 1:\n--- run 1 ---\n%s\n--- run %d ---\n%s", i, firstOut, i, out)
		}
		if tl != firstTL {
			t.Fatalf("run %d timeline file differs from run 1", i)
		}
	}
}

// TestProgressStdoutUnchanged: -progress may only write to stderr; the
// stdout bytes must match a run without it, even though the progress
// meter taps the sampling hook — on the comparison path, on the fault
// path, and chained behind an existing -ts-out sampler.
func TestProgressStdoutUnchanged(t *testing.T) {
	runOnce := func(args ...string) string {
		var stdout, stderr bytes.Buffer
		code := run(args, &stdout, &stderr)
		if code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, stderr.String())
		}
		return stdout.String()
	}
	base := []string{"-q", "5", "-m", "512", "-latency", "1", "-vc", "4"}
	cases := map[string][]string{
		"comparison": base,
		"faults":     append(append([]string{}, base...), "-fail-links", "0-6", "-fail-at", "100"),
		"sampled": append(append([]string{}, base...),
			"-ts-out", filepath.Join(t.TempDir(), "tl.md"), "-sample-every", "32"),
	}
	for name, args := range cases {
		t.Run(name, func(t *testing.T) {
			plain := runOnce(args...)
			withProgress := runOnce(append(append([]string{}, args...), "-progress")...)
			if plain != withProgress {
				t.Fatalf("-progress changed stdout:\n--- plain ---\n%s\n--- progress ---\n%s", plain, withProgress)
			}
		})
	}
}

// TestHeartbeatLine pins the -progress line format: elapsed always, the
// simulated rate once cycles advance, the ETA once the model estimate
// says work remains.
func TestHeartbeatLine(t *testing.T) {
	if got := heartbeatLine(5*time.Second, 0, 0); got != "allreduce-sim: still running (5s elapsed)" {
		t.Errorf("idle line: %q", got)
	}
	got := heartbeatLine(10*time.Second, 20_000_000, 60_000_000)
	for _, want := range []string{"10s elapsed", "2 Mcycles/s", "~20s left"} {
		if !strings.Contains(got, want) {
			t.Errorf("line %q missing %q", got, want)
		}
	}
	// Past the estimate there is nothing left to predict: no ETA.
	if got := heartbeatLine(10*time.Second, 50, 40); strings.Contains(got, "left") {
		t.Errorf("overdue line still predicts an ETA: %q", got)
	}
}

// TestCritPathOutputDeterministic: -critpath-out must produce a byte-
// identical blame report across runs and a stdout identical to a run
// without the flag (plus the trailing notice line), fault-free with a
// parallel pool and under fault injection.
func TestCritPathOutputDeterministic(t *testing.T) {
	dir := t.TempDir()
	cases := map[string][]string{
		"comparison": {"-q", "5", "-m", "1024", "-latency", "1", "-vc", "4", "-parallel", "4"},
		// Link 0-1 is the q=3 Hamiltonian worst case: it kills a tree, and
		// at this size the re-issued work delivers last, so the recovery
		// round's latency must show on the critical path.
		"faults": {"-q", "3", "-m", "512", "-latency", "1", "-vc", "4", "-fail-links", "0-1", "-fail-at", "100"},
	}
	for name, args := range cases {
		t.Run(name, func(t *testing.T) {
			runOnce := func(i int) (string, string) {
				path := filepath.Join(dir, fmt.Sprintf("cp-%s-%d.md", name, i))
				var stdout, stderr bytes.Buffer
				code := run(append(append([]string{}, args...), "-critpath-out", path), &stdout, &stderr)
				if code != 0 {
					t.Fatalf("exit %d, stderr: %s", code, stderr.String())
				}
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				return strings.ReplaceAll(stdout.String(), path, "CP_OUT"), string(data)
			}
			firstOut, firstCP := runOnce(1)
			if !strings.Contains(firstOut, "critical-path report written to CP_OUT") {
				t.Fatalf("stdout missing critpath notice:\n%s", firstOut)
			}
			for _, want := range []string{"# Critical path", "serialization", "**total**", "Embedding: "} {
				if !strings.Contains(firstCP, want) {
					t.Fatalf("report missing %q:\n%s", want, firstCP)
				}
			}
			if name == "faults" && !strings.Contains(firstCP, "Recovery rounds on the path") {
				t.Errorf("faulted report does not mention recovery rounds:\n%s", firstCP)
			}
			for i := 2; i <= 3; i++ {
				out, cp := runOnce(i)
				if out != firstOut {
					t.Fatalf("run %d stdout differs from run 1:\n--- run 1 ---\n%s\n--- run %d ---\n%s", i, firstOut, i, out)
				}
				if cp != firstCP {
					t.Fatalf("run %d report differs from run 1:\n--- run 1 ---\n%s\n--- run %d ---\n%s", i, firstCP, i, cp)
				}
			}
		})
	}
}
