// allreduce-sim runs cycle-accurate in-network Allreduce simulations on
// PolarFly and compares the embeddings against the analytic model and the
// host-based baselines.
//
// Usage:
//
//	allreduce-sim -q 7 -m 4096                 # compare all embeddings
//	allreduce-sim -q 7 -m 4096 -hosts          # include host-based MPI-style baselines
//	allreduce-sim -q 7 -m 64 -latency 20       # latency-bound regime
//	allreduce-sim -q 7 -m 4096 -trace-out t.json -metrics-out m.json
//	                                           # export a chrome://tracing /
//	                                           # Perfetto trace and per-link metrics
//	allreduce-sim -q 7 -m 16384 -fail-links 0-1 -fail-at 2000
//	                                           # fail link 0-1 mid-run; degraded-run table
//	allreduce-sim -q 7 -m 16384 -fault-seed 7  # one random link failure per embedding
//	allreduce-sim -q 7 -m 16384 -fault-plan plan.json
//	                                           # replay a JSON fault plan (internal/faults)
//	allreduce-sim -q 7 -m 16384 -ts-out tl.md -sample-every 64
//	                                           # attach the bounded-memory telemetry sampler
//	                                           # and write the markdown phase timeline
//	allreduce-sim -q 7 -m 16384 -critpath-out cp.md
//	                                           # reconstruct each embedding's causal
//	                                           # critical path and write the per-cycle
//	                                           # blame report
//	allreduce-sim -q 31 -m 65536 -progress     # heartbeat on stderr for long runs,
//	                                           # with simulated cycles/s and an ETA
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"polarfly/internal/bandwidth"
	"polarfly/internal/chaos"
	"polarfly/internal/core"
	"polarfly/internal/critpath"
	"polarfly/internal/faults"
	"polarfly/internal/netsim"
	"polarfly/internal/obsv"
	"polarfly/internal/parrun"
	"polarfly/internal/trees"
	"polarfly/internal/tsdb"
	"polarfly/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable args and streams, so the command can be
// smoke-tested end to end.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("allreduce-sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	q := fs.Int("q", 7, "prime power order")
	m := fs.Int("m", 4096, "vector elements")
	latency := fs.Int("latency", 10, "link latency in cycles")
	vc := fs.Int("vc", 10, "virtual channel depth in flits")
	hosts := fs.Bool("hosts", false, "also run host-based baselines")
	alpha := fs.Float64("alpha", 500, "host-based per-round software overhead (cycles)")
	seed := fs.Int64("seed", core.DefaultSeed, "workload seed")
	sweep := fs.Bool("sweep", false, "sweep vector sizes geometrically up to -m and report the latency/bandwidth crossover")
	parallel := fs.Int("parallel", 0, "worker-pool size for the embedding comparison and -sweep; 1 forces serial, <1 means GOMAXPROCS (output is byte-identical either way)")
	traceOut := fs.String("trace-out", "", "write a Chrome trace-event JSON (chrome://tracing, Perfetto) to this file")
	metricsOut := fs.String("metrics-out", "", "write per-link/per-tree telemetry JSON to this file")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile (runtime/pprof) to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile (runtime/pprof) to this file")
	failLinks := fs.String("fail-links", "", "comma-separated undirected links u-v to fail (link-down) at -fail-at; runs the degraded-run table")
	failAt := fs.Int("fail-at", 1000, "activation cycle for -fail-links and the window start for -fault-seed")
	faultSeed := fs.Int64("fault-seed", 0, "non-zero: generate one random link-down fault per embedding (from its own tree links, activation uniform in [fail-at, 2·fail-at]); runs the degraded-run table")
	faultPlan := fs.String("fault-plan", "", "JSON fault plan file (internal/faults schema) applied to every embedding; runs the degraded-run table")
	failRouters := fs.String("fail-routers", "", "comma-separated router nodes to fail (router-down: every incident link, atomically) at -fail-at; runs the degraded-run table")
	chaosSeed := fs.Int64("chaos-seed", 0, "non-zero: draw one weighted chaos scenario per embedding (the campaign generator: correlated groups, storms, router-down, ...), activations uniform in [fail-at, 2·fail-at]; runs the degraded-run table")
	tsOut := fs.String("ts-out", "", "attach the bounded-memory telemetry sampler and write the markdown phase timeline to this file")
	sampleEvery := fs.Int("sample-every", 64, "telemetry sampling window in cycles (with -ts-out)")
	tsWindows := fs.Int("ts-windows", 64, "telemetry ring capacity per resolution level (with -ts-out)")
	critpathOut := fs.String("critpath-out", "", "reconstruct each embedding's causal critical path from the trace stream and write the markdown blame report to this file")
	progress := fs.Bool("progress", false, "print a heartbeat with simulated cycles/s and an ETA to stderr while simulations run (stdout is unchanged)")
	engineName := fs.String("engine", "cycle", "netsim advance engine: cycle (reference per-cycle loop) or event (cycle-skipping; byte-identical output, required at q=127 scale)")
	embeddings := fs.String("embeddings", "", "comma-separated embedding kinds to run in the comparison (low-depth, hamiltonian, single-tree); empty runs the full sweep")
	maxSimBytes := fs.Int64("max-sim-bytes", 0, "fail if any run's simulator arena footprint exceeds this many bytes (0 disables; the footprint is deterministic, see netsim.ArenaFootprint)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	engine, err := netsim.ParseEngine(*engineName)
	if err != nil {
		fmt.Fprintln(stderr, "allreduce-sim: -engine:", err)
		return 2
	}
	var kinds []core.EmbeddingKind
	if *embeddings != "" {
		for _, name := range strings.Split(*embeddings, ",") {
			k, err := chaos.ParseEmbedding(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(stderr, "allreduce-sim: -embeddings:", err)
				return 2
			}
			kinds = append(kinds, k)
		}
	}
	meter := &progressMeter{}
	if *progress {
		stop := startHeartbeat(stderr, meter)
		defer stop()
	} else {
		meter = nil
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "allreduce-sim:", err)
		return 1
	}

	// closeProfile closes a profile file, surfacing the error a bare
	// deferred Close would swallow: an unflushed profile reads as truncated.
	closeProfile := func(f *os.File) {
		if err := f.Close(); err != nil {
			fmt.Fprintln(stderr, "allreduce-sim:", err)
		}
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fail(err)
		}
		defer closeProfile(f)
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(stderr, "allreduce-sim:", err)
				return
			}
			defer closeProfile(f)
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "allreduce-sim:", err)
			}
		}()
	}

	// Validate the telemetry flags before any simulation spends cycles.
	if *tsOut != "" {
		if _, err := tsdb.New(tsdb.Config{SampleEvery: *sampleEvery, Windows: *tsWindows}); err != nil {
			return fail(err)
		}
	}

	if *sweep {
		return runSweep(*q, *m, *latency, *vc, *parallel, *seed, engine, stdout, stderr)
	}
	if *failLinks != "" || *faultSeed != 0 || *faultPlan != "" || *failRouters != "" || *chaosSeed != 0 {
		return runFaults(*q, *m, *latency, *vc, *parallel, *seed,
			*failLinks, *failRouters, *failAt, *faultSeed, *chaosSeed, *faultPlan, *traceOut, *metricsOut,
			*tsOut, *sampleEvery, *tsWindows, *critpathOut, engine, meter, stdout, stderr)
	}

	cfg := netsim.Config{LinkLatency: *latency, VCDepth: *vc, Engine: engine}

	// With -trace-out/-metrics-out/-ts-out/-critpath-out/-progress, prep
	// wires one collector, telemetry rig, critical-path builder, and/or
	// progress tap per embedding. prep runs serially before the
	// comparison's worker pool dispatches, so the maps need no locks and
	// -parallel N output stays byte-identical to a serial run.
	collectors := make(map[core.EmbeddingKind]*obsv.Collector)
	rigs := make(map[core.EmbeddingKind]*tsRig)
	builders := make(map[core.EmbeddingKind]*critpath.Builder)
	var kindOrder []core.EmbeddingKind
	var prep func(core.EmbeddingKind, *core.Embedding, *netsim.Config)
	if *traceOut != "" || *metricsOut != "" || *tsOut != "" || *critpathOut != "" || meter != nil {
		prep = func(kind core.EmbeddingKind, e *core.Embedding, c *netsim.Config) {
			kindOrder = append(kindOrder, kind)
			if *traceOut != "" || *metricsOut != "" {
				col := obsv.NewCollector()
				col.LinkLatency = *latency
				col.SpanMergeGap = *latency
				collectors[kind] = col
				c.Trace = col.Observe
			}
			if *tsOut != "" {
				rigs[kind] = newTSRig(*q, *m, *sampleEvery, *tsWindows, e, false, c)
			}
			if *critpathOut != "" {
				b := critpath.NewBuilder()
				b.Attach(c)
				builders[kind] = b
			}
			if meter != nil {
				meter.attach(c, estimateCycles(*m, e))
			}
		}
	}

	rows, err := core.SimulationSweep(*q, *m, cfg, *seed, *parallel, kinds, prep)
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(stdout, "PolarFly q=%d (N=%d, radix=%d), m=%d elements, link latency=%d, VC depth=%d\n",
		*q, (*q)*(*q)+(*q)+1, *q+1, *m, *latency, *vc)
	fmt.Fprintf(stdout, "%-12s %8s %10s %10s %8s %6s %6s %11s %9s %9s %13s\n",
		"embedding", "trees", "model B", "meas. B", "cycles", "depth", "cong", "util(m/p)", "util err", "speedup", "red/bc cyc")
	cyclesByKind := make(map[core.EmbeddingKind]int)
	arenaByKind := make(map[core.EmbeddingKind]netsim.ArenaFootprint)
	for _, r := range rows {
		trees := 1
		switch r.Kind {
		case core.SingleTree:
			trees = 1
		case core.LowDepth, core.DepthTwo:
			trees = *q
		case core.Hamiltonian:
			trees = (*q + 1) / 2
		}
		cyclesByKind[r.Kind] = r.Cycles
		arenaByKind[r.Kind] = r.Arena
		fmt.Fprintf(stdout, "%-12v %8d %10.3f %10.3f %8d %6d %6d %5.2f/%4.2f %+8.2f%% %8.2fx %6d/%6d\n",
			r.Kind, trees, r.ModelBW, r.MeasuredBW, r.Cycles, r.MaxDepth, r.MaxCongestion,
			r.MaxLinkUtil, r.ModelMaxLinkUtil, 100*r.UtilRelErr, r.SpeedupVsOne,
			r.ReduceCycles, r.BcastCycles)
	}
	for kind, c := range collectors {
		c.SetCycles(cyclesByKind[kind])
		c.SetArena(arenaByKind[kind])
	}

	// Memory-ceiling gate: the arena footprint is derived from the spec,
	// so the same command line yields the same number on every machine —
	// the q=127 smoke asserts its ceiling here.
	if *maxSimBytes > 0 {
		for _, r := range rows {
			fmt.Fprintf(stdout, "arena: %-12v %d bytes (ceiling %d)\n", r.Kind, r.Arena.TotalBytes, *maxSimBytes)
			if r.Arena.TotalBytes > *maxSimBytes {
				return fail(fmt.Errorf("%v arena footprint %d bytes exceeds -max-sim-bytes %d",
					r.Kind, r.Arena.TotalBytes, *maxSimBytes))
			}
		}
	}

	if *traceOut != "" {
		ct := obsv.NewChromeTrace()
		for _, kind := range kindOrder {
			ct.Add(kind.String(), collectors[kind])
		}
		if err := writeFile(*traceOut, ct.Write); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "\nchrome trace written to %s (load in chrome://tracing or https://ui.perfetto.dev)\n", *traceOut)
	}
	if *metricsOut != "" {
		out := metricsFile{Q: *q, M: *m, LinkLatency: *latency, VCDepth: *vc,
			Embeddings: make(map[string]embeddingMetrics, len(kindOrder))}
		for _, kind := range kindOrder {
			reg := obsv.NewRegistry()
			rep := collectors[kind].Metrics(reg)
			out.Embeddings[kind.String()] = embeddingMetrics{Summary: rep, Metrics: reg.Snapshot()}
		}
		if err := writeFile(*metricsOut, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(out)
		}); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "metrics written to %s\n", *metricsOut)
	}
	if *tsOut != "" {
		if err := writeTimelines(*tsOut, kindOrder, rigs); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "telemetry timeline written to %s\n", *tsOut)
	}
	if *critpathOut != "" {
		if err := writeCritPaths(*critpathOut, kindOrder, builders, cyclesByKind); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "critical-path report written to %s\n", *critpathOut)
	}

	if *hosts {
		hrows, err := core.HostComparison(*q, *m, *alpha, float64(*latency), 1.0, *seed)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "\nhost-based baselines (α=%.0f cycles/round):\n", *alpha)
		fmt.Fprintf(stdout, "%-20s %10s %7s\n", "algorithm", "cycles", "rounds")
		for _, r := range hrows {
			fmt.Fprintf(stdout, "%-20s %10.0f %7d\n", r.Algorithm, r.Time, r.Rounds)
		}
	}
	return 0
}

// metricsFile is the -metrics-out schema: one telemetry section per
// embedding, each with the structured summary and a flat metric snapshot.
type metricsFile struct {
	Q           int                         `json:"q"`
	M           int                         `json:"m"`
	LinkLatency int                         `json:"link_latency"`
	VCDepth     int                         `json:"vc_depth"`
	Embeddings  map[string]embeddingMetrics `json:"embeddings"`
}

type embeddingMetrics struct {
	Summary *obsv.Report  `json:"summary"`
	Metrics obsv.Snapshot `json:"metrics"`
}

// tsRig is the per-embedding telemetry rig -ts-out attaches: the
// bounded-memory sampler, the hotspot/bounds analyzer, and the snapshot
// metadata captured at wiring time.
type tsRig struct {
	sampler  *tsdb.Sampler
	analyzer *tsdb.Analyzer
	meta     tsdb.SnapshotMeta
}

// newTSRig wires a sampler and analyzer into one embedding's run config.
// The sampler config must have been validated up front (run() does), so
// construction cannot fail here. faulted disables the fault-free floor
// check, which a mid-run link failure would legitimately break.
func newTSRig(q, m, sampleEvery, windows int, e *core.Embedding, faulted bool, c *netsim.Config) *tsRig {
	s := tsdb.MustNew(tsdb.Config{SampleEvery: sampleEvery, Windows: windows})
	nodes := q*q + q + 1
	floor := 0.0
	switch e.Kind {
	case core.SingleTree:
		floor = 1.0
	case core.LowDepth:
		floor = bandwidth.LowDepthBound(q, 1.0)
	case core.Hamiltonian:
		floor = bandwidth.HamiltonianBound(len(e.Forest), 1.0)
	default: // DepthTwo has no proven floor
	}
	a := tsdb.NewAnalyzer(s, tsdb.AnalyzerConfig{
		Tolerance: 0.10,
		Bounds: tsdb.Bounds{
			Nodes:     nodes,
			Aggregate: e.Model.Aggregate,
			Optimal:   bandwidth.Optimal(q, 1.0),
			Floor:     floor,
			FaultFree: !faulted,
		},
		Predicted: core.ModelLinkLoads(e),
	})
	c.SampleEvery = sampleEvery
	c.Sample = s.Sample
	return &tsRig{sampler: s, analyzer: a, meta: tsdb.SnapshotMeta{
		Q: q, Kind: e.Kind.String(), M: m, Nodes: nodes,
		Aggregate: e.Model.Aggregate, Optimal: bandwidth.Optimal(q, 1.0), Floor: floor}}
}

// writeTimelines renders every rig's phase timeline, in run order.
func writeTimelines(path string, order []core.EmbeddingKind, rigs map[core.EmbeddingKind]*tsRig) error {
	return writeFile(path, func(w io.Writer) error {
		first := true
		for _, kind := range order {
			r, ok := rigs[kind]
			if !ok {
				continue
			}
			if !first {
				if _, err := fmt.Fprintln(w); err != nil {
					return err
				}
			}
			first = false
			sn := tsdb.BuildSnapshot(r.sampler, r.analyzer, r.meta)
			if err := sn.WriteMarkdown(w); err != nil {
				return err
			}
		}
		return nil
	})
}

// writeCritPaths analyses every builder's trace index against the run's
// final cycle count and renders one blame report per embedding, in run
// order. An Analyze error (a causal-model inconsistency) aborts the
// whole file — a partial report would hide the engine bug.
func writeCritPaths(path string, order []core.EmbeddingKind, builders map[core.EmbeddingKind]*critpath.Builder, cycles map[core.EmbeddingKind]int) error {
	return writeFile(path, func(w io.Writer) error {
		first := true
		for _, kind := range order {
			b, ok := builders[kind]
			if !ok {
				continue
			}
			a, err := b.Analyze(cycles[kind])
			if err != nil {
				return fmt.Errorf("critical path for %v: %w", kind, err)
			}
			if !first {
				if _, err := fmt.Fprintln(w); err != nil {
					return err
				}
			}
			first = false
			if _, err := fmt.Fprintf(w, "Embedding: %s\n\n", kind); err != nil {
				return err
			}
			if err := critpath.WriteMarkdown(w, a, 10); err != nil {
				return err
			}
		}
		return nil
	})
}

// progressMeterSampleEvery is the sampling stride the -progress tap uses
// when no telemetry sampler is attached: coarse enough to stay invisible
// in the cycle loop, fine enough for a live rate.
const progressMeterSampleEvery = 1024

// progressMeter aggregates simulated-cycle progress across concurrently
// running simulations so the heartbeat can print a rate and an ETA. The
// counters are atomics because -parallel runs sample from pool workers.
type progressMeter struct {
	cycles   atomic.Int64 // simulated cycles advanced, summed over runs
	expected atomic.Int64 // rough model-predicted total, summed over runs
}

// attach taps one run's sampling hook, chaining any sampler already
// wired (e.g. -ts-out). Sampling is observational, so results and stdout
// stay byte-identical with or without the tap.
func (p *progressMeter) attach(c *netsim.Config, estimate int) {
	p.expected.Add(int64(estimate))
	prev := c.Sample
	if prev == nil {
		c.SampleEvery = progressMeterSampleEvery
	}
	last := new(int64)
	c.Sample = func(f *netsim.SampleFrame) {
		p.cycles.Add(int64(f.Cycle) - *last)
		*last = int64(f.Cycle)
		if prev != nil {
			prev(f)
		}
	}
}

// estimateCycles is the waterfill model's guess at a run's simulated
// length (m over the aggregate bandwidth), used only for the -progress
// ETA — fill, drain, and faults make the real run somewhat longer.
func estimateCycles(m int, e *core.Embedding) int {
	if e.Model.Aggregate <= 0 {
		return 0
	}
	return int(float64(m) / e.Model.Aggregate)
}

// heartbeatLine formats one -progress stderr line. The rate appears once
// simulations have advanced, and the ETA once the model estimate says
// work remains; a pure function so the format is testable without timers.
func heartbeatLine(elapsed time.Duration, cycles, expected int64) string {
	line := fmt.Sprintf("allreduce-sim: still running (%s elapsed", elapsed.Round(time.Second))
	secs := elapsed.Seconds()
	if cycles > 0 && secs > 0 {
		rate := float64(cycles) / secs
		line += fmt.Sprintf(", %.3g Mcycles/s", rate/1e6)
		if expected > cycles && rate > 0 {
			eta := time.Duration(float64(expected-cycles) / rate * float64(time.Second))
			line += fmt.Sprintf(", ~%s left", eta.Round(time.Second))
		}
	}
	return line + ")"
}

// startHeartbeat prints a liveness line — elapsed time, simulated
// cycles/s, and a model-based ETA — to w every few seconds until the
// returned stop function is called. Stdout is untouched, so -progress
// never changes the comparison's byte-identical output contract.
func startHeartbeat(w io.Writer, meter *progressMeter) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		start := time.Now()
		t := time.NewTicker(2 * time.Second)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				fmt.Fprintln(w, heartbeatLine(time.Since(start),
					meter.cycles.Load(), meter.expected.Load()))
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		// The write error is the root cause; the best-effort close only
		// releases the descriptor.
		_ = f.Close()
		return err
	}
	return f.Close()
}

// parseFailLinks parses a comma-separated list of undirected "u-v" link
// specs into link-down faults activating at cycle at.
func parseFailLinks(s string, at int) (*faults.Plan, error) {
	plan := &faults.Plan{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		uv := strings.Split(part, "-")
		if len(uv) != 2 {
			return nil, fmt.Errorf("bad link %q: want u-v", part)
		}
		u, err := strconv.Atoi(uv[0])
		if err != nil {
			return nil, fmt.Errorf("bad link %q: %v", part, err)
		}
		v, err := strconv.Atoi(uv[1])
		if err != nil {
			return nil, fmt.Errorf("bad link %q: %v", part, err)
		}
		plan.Faults = append(plan.Faults, faults.Fault{Kind: faults.LinkDown, U: u, V: v, At: at})
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return plan, nil
}

// parseFailRouters parses the -fail-routers node list into a router-down
// plan: every node fails atomically at cycle at, taking all its incident
// links with it.
func parseFailRouters(routers string, at int) (*faults.Plan, error) {
	plan := &faults.Plan{}
	for _, part := range strings.Split(routers, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad router %q: %v", part, err)
		}
		plan.Faults = append(plan.Faults, faults.Fault{Kind: faults.RouterDown, Node: n, At: at})
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return plan, nil
}

// dedupLinks canonicalises (u < v), sorts, and deduplicates an
// undirected link list — router expansion can duplicate an explicitly
// failed link.
func dedupLinks(in [][2]int) [][2]int {
	seen := make(map[[2]int]bool, len(in))
	out := in[:0]
	for _, l := range in {
		if l[0] > l[1] {
			l[0], l[1] = l[1], l[0]
		}
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// treeLinks returns the undirected links the embedding's forest uses, in
// deterministic (u, v) order.
func treeLinks(e *core.Embedding) [][2]int {
	cong := trees.Congestion(e.Forest)
	out := make([][2]int, 0, len(cong))
	for l := range cong {
		out = append(out, [2]int{l.U, l.V})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// runFaults injects a fault plan into a full Allreduce for every embedding
// kind and prints the degraded-run table: the recovery the simulator
// performed, the measured post-recovery bandwidth, and the core.Degrade
// analytical prediction it is compared against. Exactly one of plan,
// links, routers, fseed, or chaosSeed selects the faults:
//
//   - plan: a JSON fault plan applied verbatim to every embedding,
//   - links: comma-separated u-v links going down at cycle at,
//   - routers: comma-separated nodes going down (every incident link,
//     atomically) at cycle at,
//   - fseed: one generated link-down fault per embedding, drawn from that
//     embedding's own tree links (ER and Singer topologies number nodes
//     differently, so a shared random link would be meaningless),
//   - chaosSeed: one weighted chaos scenario per embedding, drawn by the
//     campaign engine's generator from the embedding's own topology.
//
// Each embedding's simulation is an independent job on a parrun pool
// (rows render to strings inside the jobs and print afterwards in
// embedding order), so -parallel N output is byte-identical to serial.
func runFaults(q, m, latency, vc, parallel int, seed int64, links, routers string, at int, fseed, chaosSeed int64, planPath, traceOut, metricsOut string,
	tsOut string, sampleEvery, tsWindows int, critpathOut string, engine netsim.Engine, meter *progressMeter, stdout, stderr io.Writer) int {
	fail := func(err error) int {
		fmt.Fprintln(stderr, "allreduce-sim:", err)
		return 1
	}
	set := 0
	for _, on := range []bool{planPath != "", links != "", routers != "", fseed != 0, chaosSeed != 0} {
		if on {
			set++
		}
	}
	if set > 1 {
		return fail(errors.New("use only one of -fault-plan, -fail-links, -fail-routers, -fault-seed, -chaos-seed"))
	}
	if at < 1 {
		return fail(fmt.Errorf("-fail-at %d: activation cycle must be ≥ 1", at))
	}

	// A shared plan (file, explicit links, or explicit routers) applies to
	// every embedding; with -fault-seed or -chaos-seed the plan is
	// generated per embedding below.
	var shared *faults.Plan
	switch {
	case planPath != "":
		f, err := os.Open(planPath)
		if err != nil {
			return fail(err)
		}
		shared, err = faults.DecodePlan(f)
		_ = f.Close()
		if err != nil {
			return fail(err)
		}
	case links != "":
		var err error
		shared, err = parseFailLinks(links, at)
		if err != nil {
			return fail(err)
		}
	case routers != "":
		var err error
		shared, err = parseFailRouters(routers, at)
		if err != nil {
			return fail(err)
		}
	}

	inst, err := core.NewInstance(q)
	if err != nil {
		return fail(err)
	}
	inputs := workload.Vectors(inst.N(), m, 1000, seed)
	want := netsim.ExpectedOutput(inputs)
	kinds := []core.EmbeddingKind{core.SingleTree, core.LowDepth, core.Hamiltonian}
	if q%2 == 0 {
		kinds = []core.EmbeddingKind{core.SingleTree, core.Hamiltonian}
	}

	// With -trace-out/-metrics-out, attach one collector per embedding so
	// the fault and recovery marks land in the exported telemetry; with
	// -ts-out, one telemetry rig per embedding captures the degraded run's
	// phase timeline (floor checks off — a fault legitimately breaks them);
	// with -critpath-out, one critical-path builder per embedding indexes
	// the trace for the post-run blame analysis.
	collectors := make(map[core.EmbeddingKind]*obsv.Collector)
	rigs := make(map[core.EmbeddingKind]*tsRig)
	builders := make(map[core.EmbeddingKind]*critpath.Builder)
	cyclesByKind := make(map[core.EmbeddingKind]int)
	var kindOrder []core.EmbeddingKind

	// faultJob is one embedding's fully-prepared degraded run. Prep runs
	// serially (the maps above need no locks); the simulations then run as
	// independent parrun jobs, each touching only its own job state and
	// its own collector.
	type faultJob struct {
		kind  core.EmbeddingKind
		e     *core.Embedding
		cfg   netsim.Config
		pred  float64
		label string
	}
	var jobs []faultJob
	for _, kind := range kinds {
		e, err := inst.Embed(kind)
		if err != nil {
			return fail(err)
		}
		plan := shared
		switch {
		case plan != nil:
		case chaosSeed != 0:
			plan, err = chaos.RandomPlan(inst, e, latency, at, 2*at, chaosSeed)
			if err != nil {
				return fail(err)
			}
		default:
			plan, err = faults.Generate(treeLinks(e), 1, at, 2*at, fseed)
			if err != nil {
				return fail(err)
			}
		}
		// The lossy link set for the prediction: explicit link faults plus
		// every link incident to a failed router, expanded through the
		// embedding's own topology (a pure-data plan cannot know the
		// adjacency). Routers show as r<node> in the failed-links column.
		failed := plan.FailedLinks()
		linkCol := make([]string, len(failed))
		for i, l := range failed {
			linkCol[i] = fmt.Sprintf("%d-%d", l[0], l[1])
		}
		for _, n := range plan.FailedRouters() {
			linkCol = append(linkCol, fmt.Sprintf("r%d", n))
			for _, nb := range e.Topology.Neighbors(n) {
				failed = append(failed, [2]int{n, nb})
			}
		}
		failed = dedupLinks(failed)
		label := strings.Join(linkCol, ",")
		if label == "" {
			label = "-"
		}

		// The analytical prediction: drop every tree crossing a failed
		// link, re-run the waterfill on the survivors.
		pred := 0.0
		deg, degErr := core.Degrade(e, failed)
		if degErr == nil {
			pred = deg.Model.Aggregate
		}

		cfg := netsim.Config{LinkLatency: latency, VCDepth: vc, Faults: plan, Engine: engine}
		if traceOut != "" || metricsOut != "" || tsOut != "" || critpathOut != "" {
			kindOrder = append(kindOrder, kind)
		}
		if traceOut != "" || metricsOut != "" {
			c := obsv.NewCollector()
			c.LinkLatency = latency
			c.SpanMergeGap = latency
			collectors[kind] = c
			cfg.Trace = c.Observe
		}
		if tsOut != "" {
			rigs[kind] = newTSRig(q, m, sampleEvery, tsWindows, e, len(plan.Faults) > 0, &cfg)
		}
		if critpathOut != "" {
			b := critpath.NewBuilder()
			b.Attach(&cfg)
			builders[kind] = b
		}
		if meter != nil {
			meter.attach(&cfg, estimateCycles(m, e))
		}
		jobs = append(jobs, faultJob{kind: kind, e: e, cfg: cfg, pred: pred, label: label})
	}

	// faultRow is one job's rendered table line plus what the serial
	// commit below needs: rows print in embedding order after the pool
	// drains, keeping stdout byte-identical at any -parallel.
	type faultRow struct {
		line    string
		cycles  int
		hasRes  bool
		allLost bool
	}
	rows, err := parrun.Map(parallel, len(jobs), func(i int) (faultRow, error) {
		job := jobs[i]
		var row faultRow
		res, err := inst.Allreduce(job.e, inputs, job.cfg)
		if c, ok := collectors[job.kind]; ok && res != nil {
			c.SetCycles(res.Cycles)
		}
		if res != nil {
			row.cycles, row.hasRes = res.Cycles, true
		}
		if errors.Is(err, netsim.ErrAllTreesLost) {
			row.allLost = true
			row.line = fmt.Sprintf("%-12v %6d %-14s %-10s %9s %8s %8s %8s %10s %10s %8s %8s\n",
				job.kind, len(job.e.Forest), job.label, "all", "-", "-", "-", "-", "0.000", "-", "-", "aborted")
			return row, nil
		}
		if err != nil {
			return row, fmt.Errorf("%v: %w", job.kind, err)
		}

		outputs := "ok"
		for v := range res.Outputs {
			for k := range want {
				if res.Outputs[v][k] != want[k] {
					outputs = "WRONG"
					break
				}
			}
			if outputs != "ok" {
				break
			}
		}
		recoverAt, reissued := "-", 0
		if len(res.Recoveries) > 0 {
			last := res.Recoveries[len(res.Recoveries)-1]
			recoverAt = fmt.Sprintf("%d", last.Cycle)
			reissued = last.Reissued
		}
		// Without a recovery (the plan never touched this embedding's
		// links) there is no post-recovery window to measure.
		meas, relErr := "-", "-"
		if len(res.Recoveries) > 0 {
			meas = fmt.Sprintf("%.3f", res.PostRecoveryBW)
			if job.pred > 0 {
				relErr = fmt.Sprintf("%+.2f%%", 100*(res.PostRecoveryBW-job.pred)/job.pred)
			}
		}
		row.line = fmt.Sprintf("%-12v %6d %-14s %-10s %9s %8d %8d %8d %10.3f %10s %8s %8s\n",
			job.kind, len(job.e.Forest), job.label, fmt.Sprintf("%v", res.DeadTrees), recoverAt,
			res.DroppedFlits, reissued, res.Cycles, job.pred, meas, relErr, outputs)
		return row, nil
	})
	if err != nil {
		return fail(err)
	}

	fmt.Fprintf(stdout, "degraded runs, PolarFly q=%d (N=%d), m=%d elements, link latency=%d, VC depth=%d\n",
		q, q*q+q+1, m, latency, vc)
	fmt.Fprintf(stdout, "%-12s %6s %-14s %-10s %9s %8s %8s %8s %10s %10s %8s %8s\n",
		"embedding", "trees", "failed links", "dead", "recover@", "dropped", "reissued", "cycles",
		"pred B", "meas B", "err", "outputs")
	for i, row := range rows {
		fmt.Fprint(stdout, row.line)
		if row.hasRes {
			cyclesByKind[jobs[i].kind] = row.cycles
		}
		if row.allLost {
			// No completed run, so no critical path to analyse.
			delete(builders, jobs[i].kind)
		}
	}

	if traceOut != "" {
		ct := obsv.NewChromeTrace()
		for _, kind := range kindOrder {
			ct.Add(kind.String(), collectors[kind])
		}
		if err := writeFile(traceOut, ct.Write); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "\nchrome trace written to %s (load in chrome://tracing or https://ui.perfetto.dev)\n", traceOut)
	}
	if metricsOut != "" {
		out := metricsFile{Q: q, M: m, LinkLatency: latency, VCDepth: vc,
			Embeddings: make(map[string]embeddingMetrics, len(kindOrder))}
		for _, kind := range kindOrder {
			reg := obsv.NewRegistry()
			rep := collectors[kind].Metrics(reg)
			out.Embeddings[kind.String()] = embeddingMetrics{Summary: rep, Metrics: reg.Snapshot()}
		}
		if err := writeFile(metricsOut, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(out)
		}); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "metrics written to %s\n", metricsOut)
	}
	if tsOut != "" {
		if err := writeTimelines(tsOut, kindOrder, rigs); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "telemetry timeline written to %s\n", tsOut)
	}
	if critpathOut != "" {
		if err := writeCritPaths(critpathOut, kindOrder, builders, cyclesByKind); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "critical-path report written to %s\n", critpathOut)
	}
	return 0
}

// sweepKinds is the fixed iteration order for winner selection, so ties
// resolve identically on every run.
var sweepKinds = []core.EmbeddingKind{core.SingleTree, core.LowDepth, core.Hamiltonian}

// runSweep prints per-embedding cycle counts over a geometric vector-size
// sweep, marking the winner at each point — the latency/bandwidth
// crossover study of Figure 5's discussion. The m points are independent
// (SimulationComparison builds its own instance and workload per call),
// so they run on a parrun pool; rows are rendered to strings inside the
// jobs and printed afterwards in m order, keeping stdout byte-identical
// to the serial sweep.
func runSweep(q, maxM, latency, vc, parallel int, seed int64, engine netsim.Engine, stdout, stderr io.Writer) int {
	cfg := netsim.Config{LinkLatency: latency, VCDepth: vc, Engine: engine}
	var ms []int
	for m := 8; m <= maxM; m *= 4 {
		ms = append(ms, m)
	}
	lines, err := parrun.Map(parallel, len(ms), func(i int) (string, error) {
		m := ms[i]
		rows, err := core.SimulationComparison(q, m, cfg, seed)
		if err != nil {
			return "", err
		}
		cycles := map[core.EmbeddingKind]int{}
		// worstErr is the design point's measured-vs-model utilization
		// error: the largest-magnitude relative error across embeddings.
		worstErr := 0.0
		for _, r := range rows {
			cycles[r.Kind] = r.Cycles
			if e := r.UtilRelErr; math.Abs(e) > math.Abs(worstErr) {
				worstErr = e
			}
		}
		winner, best := core.SingleTree, 0
		for _, kind := range sweepKinds {
			c, ok := cycles[kind]
			if !ok {
				continue
			}
			if best == 0 || c < best {
				winner, best = kind, c
			}
		}
		low := "-"
		if c, ok := cycles[core.LowDepth]; ok {
			low = fmt.Sprintf("%d", c)
		}
		return fmt.Sprintf("%8d %12d %12s %12d %10v %+9.2f%%\n",
			m, cycles[core.SingleTree], low, cycles[core.Hamiltonian], winner, 100*worstErr), nil
	})
	if err != nil {
		fmt.Fprintln(stderr, "allreduce-sim:", err)
		return 1
	}
	fmt.Fprintf(stdout, "vector-size sweep, PolarFly q=%d, link latency=%d\n", q, latency)
	fmt.Fprintf(stdout, "%8s %12s %12s %12s %10s %10s\n",
		"m", "single", "low-depth", "hamiltonian", "winner", "util err")
	for _, line := range lines {
		fmt.Fprint(stdout, line)
	}
	return 0
}
