// allreduce-sim runs cycle-accurate in-network Allreduce simulations on
// PolarFly and compares the embeddings against the analytic model and the
// host-based baselines.
//
// Usage:
//
//	allreduce-sim -q 7 -m 4096                 # compare all embeddings
//	allreduce-sim -q 7 -m 4096 -hosts          # include host-based MPI-style baselines
//	allreduce-sim -q 7 -m 64 -latency 20       # latency-bound regime
package main

import (
	"flag"
	"fmt"
	"os"

	"polarfly/internal/core"
	"polarfly/internal/netsim"
)

func main() {
	q := flag.Int("q", 7, "prime power order")
	m := flag.Int("m", 4096, "vector elements")
	latency := flag.Int("latency", 10, "link latency in cycles")
	vc := flag.Int("vc", 10, "virtual channel depth in flits")
	hosts := flag.Bool("hosts", false, "also run host-based baselines")
	alpha := flag.Float64("alpha", 500, "host-based per-round software overhead (cycles)")
	seed := flag.Int64("seed", core.DefaultSeed, "workload seed")
	sweep := flag.Bool("sweep", false, "sweep vector sizes geometrically up to -m and report the latency/bandwidth crossover")
	flag.Parse()

	if *sweep {
		runSweep(*q, *m, *latency, *vc, *seed)
		return
	}

	cfg := netsim.Config{LinkLatency: *latency, VCDepth: *vc}
	rows, err := core.SimulationComparison(*q, *m, cfg, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "allreduce-sim:", err)
		os.Exit(1)
	}
	fmt.Printf("PolarFly q=%d (N=%d, radix=%d), m=%d elements, link latency=%d, VC depth=%d\n",
		*q, (*q)*(*q)+(*q)+1, *q+1, *m, *latency, *vc)
	fmt.Printf("%-12s %8s %10s %10s %8s %6s %6s %9s\n",
		"embedding", "trees", "model B", "meas. B", "cycles", "depth", "cong", "speedup")
	for _, r := range rows {
		trees := 1
		switch r.Kind {
		case core.LowDepth:
			trees = *q
		case core.Hamiltonian:
			trees = (*q + 1) / 2
		}
		fmt.Printf("%-12v %8d %10.3f %10.3f %8d %6d %6d %8.2fx\n",
			r.Kind, trees, r.ModelBW, r.MeasuredBW, r.Cycles, r.MaxDepth, r.MaxCongestion, r.SpeedupVsOne)
	}

	if *hosts {
		hrows, err := core.HostComparison(*q, *m, *alpha, float64(*latency), 1.0, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "allreduce-sim:", err)
			os.Exit(1)
		}
		fmt.Printf("\nhost-based baselines (α=%.0f cycles/round):\n", *alpha)
		fmt.Printf("%-20s %10s %7s\n", "algorithm", "cycles", "rounds")
		for _, r := range hrows {
			fmt.Printf("%-20s %10.0f %7d\n", r.Algorithm, r.Time, r.Rounds)
		}
	}
}

// runSweep prints per-embedding cycle counts over a geometric vector-size
// sweep, marking the winner at each point — the latency/bandwidth
// crossover study of Figure 5's discussion.
func runSweep(q, maxM, latency, vc int, seed int64) {
	cfg := netsim.Config{LinkLatency: latency, VCDepth: vc}
	fmt.Printf("vector-size sweep, PolarFly q=%d, link latency=%d\n", q, latency)
	fmt.Printf("%8s %12s %12s %12s %10s\n", "m", "single", "low-depth", "hamiltonian", "winner")
	for m := 8; m <= maxM; m *= 4 {
		rows, err := core.SimulationComparison(q, m, cfg, seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "allreduce-sim:", err)
			os.Exit(1)
		}
		cycles := map[core.EmbeddingKind]int{}
		for _, r := range rows {
			cycles[r.Kind] = r.Cycles
		}
		winner, best := core.SingleTree, 1<<30
		for kind, c := range cycles {
			if c < best {
				winner, best = kind, c
			}
		}
		low := "-"
		if c, ok := cycles[core.LowDepth]; ok {
			low = fmt.Sprintf("%d", c)
		}
		fmt.Printf("%8d %12d %12s %12d %10v\n",
			m, cycles[core.SingleTree], low, cycles[core.Hamiltonian], winner)
	}
}
