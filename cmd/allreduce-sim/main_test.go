package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunMetricsSmoke drives the command end to end on a tiny instance and
// checks that the -metrics-out file is valid JSON with per-link telemetry.
func TestRunMetricsSmoke(t *testing.T) {
	metricsPath := filepath.Join(t.TempDir(), "m.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-q", "3", "-m", "8", "-metrics-out", metricsPath}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"PolarFly q=3", "single-tree", "hamiltonian", "metrics written to"} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}

	var file metricsFile
	data, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatalf("metrics file is not valid JSON: %v", err)
	}
	if file.Q != 3 || file.M != 8 {
		t.Errorf("metrics header q=%d m=%d, want 3/8", file.Q, file.M)
	}
	if len(file.Embeddings) == 0 {
		t.Fatal("no embedding sections in metrics file")
	}
	for name, em := range file.Embeddings {
		if em.Summary == nil {
			t.Fatalf("%s: missing summary", name)
		}
		if len(em.Summary.Links) == 0 {
			t.Errorf("%s: no per-link telemetry", name)
		}
		for _, l := range em.Summary.Links {
			if l.Utilization <= 0 || l.Utilization > 1 {
				t.Errorf("%s: link %d->%d utilization %v out of (0,1]",
					name, l.From, l.To, l.Utilization)
			}
		}
	}
}

// TestRunTraceSmoke checks the -trace-out path produces a loadable Chrome
// trace on a tiny instance.
func TestRunTraceSmoke(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "t.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-q", "3", "-m", "8", "-trace-out", tracePath}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if len(file.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}
}

// TestRunBadFlag makes sure flag errors surface as exit code 2, not panics.
func TestRunBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Errorf("exit code %d for unknown flag, want 2", code)
	}
}
