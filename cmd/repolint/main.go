// repolint runs the project's static-analysis suite (internal/analysis)
// over the module: determinism, float-comparison, enum-exhaustiveness and
// error-handling invariants that the simulator's correctness claims rest
// on. It is stdlib-only by design.
//
// Usage:
//
//	repolint ./...                  # analyze the whole module
//	repolint ./internal/netsim      # restrict to package subtrees
//	repolint -json ./...            # machine-readable diagnostics
//	repolint -allow repolint.allow  # explicit allowlist file (default if present)
//
// Exit status: 0 clean, 1 diagnostics reported, 2 usage or load failure.
// Individual findings are suppressed in source with
// "//lint:ignore <analyzer> <reason>" on the same or preceding line.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"polarfly/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable streams so the command can be tested end to
// end.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("repolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	allowFile := fs.String("allow", "", "allowlist file (default: repolint.allow at the module root, if present)")
	list := fs.Bool("analyzers", false, "list the analyzer suite and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	root, rootErr := findModuleRoot()
	if rootErr != nil && !onlyDirArgs(fs.Args()) {
		fmt.Fprintln(stderr, "repolint:", rootErr)
		return 2
	}

	var allow []analysis.AllowRule
	path := *allowFile
	if path == "" {
		if candidate := filepath.Join(root, "repolint.allow"); fileExists(candidate) {
			path = candidate
		}
	}
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(stderr, "repolint:", err)
			return 2
		}
		if allow, err = analysis.ParseAllowFile(string(data)); err != nil {
			fmt.Fprintln(stderr, "repolint:", err)
			return 2
		}
	}

	var pkgs []*analysis.Package
	if rootErr == nil {
		loaded, err := analysis.LoadModule(root)
		if err != nil {
			fmt.Fprintln(stderr, "repolint:", err)
			return 2
		}
		pkgs = loaded
	}

	// Directory arguments outside the module walk (fixtures under
	// testdata, or standalone trees with no go.mod) are loaded directly.
	inModule := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		inModule[p.Dir] = true
	}
	var patterns []string
	var extra []*analysis.Package
	for _, arg := range fs.Args() {
		abs, err := filepath.Abs(strings.TrimSuffix(strings.TrimSuffix(arg, "..."), "/"))
		if err == nil && dirExists(abs) && !inModule[abs] && !strings.HasSuffix(arg, "...") {
			pkg, err := analysis.LoadDir(abs, "fixture/"+filepath.Base(abs))
			if err != nil {
				fmt.Fprintln(stderr, "repolint:", err)
				return 2
			}
			extra = append(extra, pkg)
			continue
		}
		patterns = append(patterns, arg)
	}
	if filtered := filterPackages(pkgs, patterns, root); filtered != nil {
		pkgs = filtered
	}
	if len(extra) > 0 {
		if len(patterns) == 0 {
			pkgs = extra
		} else {
			pkgs = append(pkgs, extra...)
		}
	}

	diags := analysis.Run(pkgs, analysis.All(), allow)
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = rel
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "repolint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stdout, "repolint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// filterPackages restricts pkgs to the subtrees named by patterns like
// "./...", "./internal/netsim" or "polarfly/internal/netsim/...". A nil
// return means "no restriction".
func filterPackages(pkgs []*analysis.Package, patterns []string, root string) []*analysis.Package {
	if len(patterns) == 0 {
		return nil
	}
	var prefixes []string
	for _, p := range patterns {
		p = strings.TrimSuffix(p, "...")
		p = strings.TrimSuffix(p, "/")
		p = strings.TrimPrefix(p, "./")
		if p == "" || p == "." {
			return nil // whole module
		}
		prefixes = append(prefixes, p)
	}
	var out []*analysis.Package
	for _, pkg := range pkgs {
		rel := strings.TrimPrefix(strings.TrimPrefix(pkg.Path, pkg.ModulePath), "/")
		for _, prefix := range prefixes {
			if rel == prefix || strings.HasPrefix(rel, prefix+"/") ||
				pkg.Path == prefix || strings.HasPrefix(pkg.Path, prefix+"/") {
				out = append(out, pkg)
				break
			}
		}
	}
	return out
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if fileExists(filepath.Join(dir, "go.mod")) {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func fileExists(path string) bool {
	st, err := os.Stat(path)
	return err == nil && !st.IsDir()
}

func dirExists(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.IsDir()
}

// onlyDirArgs reports whether every positional argument names an existing
// directory, in which case repolint can run without a surrounding module.
func onlyDirArgs(args []string) bool {
	if len(args) == 0 {
		return false
	}
	for _, a := range args {
		if !dirExists(strings.TrimSuffix(a, "/")) {
			return false
		}
	}
	return true
}
