package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoIsClean is the gate the Makefile's lint target enforces: the
// shipped tree must produce zero diagnostics.
func TestRepoIsClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("repolint ./... exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
}

// TestFixturesFail asserts each analyzer's bad fixture trips the CLI with
// a non-zero exit and a diagnostic naming the analyzer.
func TestFixturesFail(t *testing.T) {
	for _, name := range []string{"maporder", "nondeterminism", "floatcmp", "exhaustive", "errcheck",
		"hotalloc", "gocapture", "dettaint"} {
		t.Run(name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			dir := "../../internal/analysis/testdata/" + name + "/bad"
			code := run([]string{dir}, &stdout, &stderr)
			if code != 1 {
				t.Fatalf("exit %d for %s, want 1\nstdout:\n%s\nstderr:\n%s",
					code, dir, stdout.String(), stderr.String())
			}
			if !strings.Contains(stdout.String(), "["+name+"]") {
				t.Errorf("output missing [%s] diagnostics:\n%s", name, stdout.String())
			}
		})
	}
}

// TestJSONOutput checks -json yields a machine-readable diagnostic array.
func TestJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "../../internal/analysis/testdata/floatcmp/bad"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, stderr.String())
	}
	var diags []struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(diags) == 0 {
		t.Fatal("empty diagnostic array for a bad fixture")
	}
	for _, d := range diags {
		if d.Analyzer != "floatcmp" || d.Line == 0 || d.File == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
	}
}

// TestAnalyzersFlag lists the suite.
func TestAnalyzersFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-analyzers"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d; stderr: %s", code, stderr.String())
	}
	for _, name := range []string{"maporder", "nondeterminism", "floatcmp", "exhaustive", "errcheck",
		"hotalloc", "gocapture", "dettaint"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("analyzer listing missing %s:\n%s", name, stdout.String())
		}
	}
}

// TestBadFlag surfaces usage errors as exit 2.
func TestBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Errorf("exit %d for unknown flag, want 2", code)
	}
}

// TestBadAllowFile surfaces allowlist problems as exit 2: a missing file
// named explicitly, and a malformed rule line.
func TestBadAllowFile(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-allow", "/no/such/allowfile", "./..."}, &stdout, &stderr); code != 2 {
		t.Errorf("exit %d for missing allow file, want 2", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.allow")
	if err := os.WriteFile(bad, []byte("only-one-field\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-allow", bad, "./..."}, &stdout, &stderr); code != 2 {
		t.Errorf("exit %d for malformed allow file, want 2", code)
	}
}

// TestJSONGolden pins the exact -json document for the dettaint bad
// fixture: analyzer interleaving, file paths relative to the module root,
// positions and messages. Regenerate with
//
//	go run ./cmd/repolint -json internal/analysis/testdata/dettaint/bad
//
// from the module root when the fixture or messages change intentionally.
func TestJSONGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "../../internal/analysis/testdata/dettaint/bad"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, stderr.String())
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "dettaint_bad.golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := strings.TrimSpace(stdout.String()), strings.TrimSpace(string(golden)); got != want {
		t.Errorf("-json output diverges from testdata/dettaint_bad.golden.json:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestIgnoreDirectivesNewAnalyzers proves //lint:ignore works for the
// call-graph analyzers in both sanctioned placements: on the offending
// line and on the line directly above it.
func TestIgnoreDirectivesNewAnalyzers(t *testing.T) {
	dir := t.TempDir()
	src := `package fix

import (
	"fmt"
	"time"
)

// Result is determinism-critical. lint:detsink
type Result struct {
	Stamp int64
}

//lint:hotpath fixture root
func hot() []int {
	//lint:ignore hotalloc preceding-line placement
	buf := make([]int, 8)
	extra := make([]int, 4) //lint:ignore hotalloc same-line placement
	return append(buf, extra...)
}

func workers(m map[int]int) {
	done := make(chan struct{})
	go func() {
		//lint:ignore gocapture preceding-line placement
		m[1] = 1
		m[2] = 2 //lint:ignore gocapture same-line placement
		close(done)
	}()
	<-done
}

func stamp(r *Result) {
	//lint:ignore dettaint preceding-line placement
	r.Stamp = time.Now().UnixNano()
	//lint:ignore nondeterminism fixture exercises dettaint suppression
	fmt.Println(time.Now().Unix()) //lint:ignore dettaint same-line placement
}
`
	if err := os.WriteFile(filepath.Join(dir, "fix.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{dir}, &stdout, &stderr)
	// The nondeterminism analyzer still flags the raw time.Now reads —
	// only the dettaint/hotalloc/gocapture findings are suppressed.
	for _, name := range []string{"hotalloc", "gocapture", "dettaint"} {
		if strings.Contains(stdout.String(), "["+name+"]") {
			t.Errorf("suppressed %s finding still reported:\n%s", name, stdout.String())
		}
	}
	_ = code
}
