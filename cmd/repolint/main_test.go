package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestRepoIsClean is the gate the Makefile's lint target enforces: the
// shipped tree must produce zero diagnostics.
func TestRepoIsClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("repolint ./... exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
}

// TestFixturesFail asserts each analyzer's bad fixture trips the CLI with
// a non-zero exit and a diagnostic naming the analyzer.
func TestFixturesFail(t *testing.T) {
	for _, name := range []string{"maporder", "nondeterminism", "floatcmp", "exhaustive", "errcheck"} {
		t.Run(name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			dir := "../../internal/analysis/testdata/" + name + "/bad"
			code := run([]string{dir}, &stdout, &stderr)
			if code != 1 {
				t.Fatalf("exit %d for %s, want 1\nstdout:\n%s\nstderr:\n%s",
					code, dir, stdout.String(), stderr.String())
			}
			if !strings.Contains(stdout.String(), "["+name+"]") {
				t.Errorf("output missing [%s] diagnostics:\n%s", name, stdout.String())
			}
		})
	}
}

// TestJSONOutput checks -json yields a machine-readable diagnostic array.
func TestJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "../../internal/analysis/testdata/floatcmp/bad"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, stderr.String())
	}
	var diags []struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(diags) == 0 {
		t.Fatal("empty diagnostic array for a bad fixture")
	}
	for _, d := range diags {
		if d.Analyzer != "floatcmp" || d.Line == 0 || d.File == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
	}
}

// TestAnalyzersFlag lists the suite.
func TestAnalyzersFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-analyzers"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d; stderr: %s", code, stderr.String())
	}
	for _, name := range []string{"maporder", "nondeterminism", "floatcmp", "exhaustive", "errcheck"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("analyzer listing missing %s:\n%s", name, stdout.String())
		}
	}
}

// TestBadFlag surfaces usage errors as exit 2.
func TestBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Errorf("exit %d for unknown flag, want 2", code)
	}
}
