// papercheck re-verifies every theorem, lemma, property and published
// value of the paper on freshly constructed instances and prints a
// checklist. It is the one-command audit of this reproduction:
//
//	papercheck            # standard audit (q up to 13, sweeps to 128)
//	papercheck -deep      # heavier instances where applicable
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"polarfly/internal/bandwidth"
	"polarfly/internal/core"
	"polarfly/internal/er"
	"polarfly/internal/graph"
	"polarfly/internal/netsim"
	"polarfly/internal/numtheory"
	"polarfly/internal/singer"
	"polarfly/internal/trees"
)

var failures int

func check(name string, ok bool, detail string) {
	mark := "ok  "
	if !ok {
		mark = "FAIL"
		failures++
	}
	fmt.Printf("[%s] %-58s %s\n", mark, name, detail)
}

func main() {
	deep := flag.Bool("deep", false, "use larger instances")
	flag.Parse()

	oddQs := []int{3, 5, 7, 9, 11}
	sweepHi := 64
	if *deep {
		oddQs = append(oddQs, 13, 17, 19, 23, 25)
		sweepHi = 127
	}

	// --- §6.1: construction and Theorem 6.1 -------------------------------
	for _, q := range []int{3, 4, 5, 7, 8, 9} {
		pg, err := er.New(q)
		if err != nil {
			check(fmt.Sprintf("ER_%d construction", q), false, err.Error())
			continue
		}
		okN := pg.N() == q*q+q+1
		okM := pg.G.M() == q*(q+1)*(q+1)/2
		okDiam := pg.G.Diameter() == 2
		okPaths := pg.G.HasUniqueTwoPaths()
		check(fmt.Sprintf("Thm 6.1 / §6.1 for q=%d", q), okN && okM && okDiam && okPaths,
			fmt.Sprintf("N=%d M=%d diam=%d unique2paths=%v", pg.N(), pg.G.M(), pg.G.Diameter(), okPaths))
	}

	// --- Table 1 -----------------------------------------------------------
	for _, q := range oddQs {
		row, err := core.Table1(q)
		ok := err == nil &&
			row.W == q+1 && row.V1 == q*(q+1)/2 && row.V2 == q*(q-1)/2 &&
			row.QuadricNbrs == [3]int{0, q, 0} &&
			row.V1Nbrs == [3]int{2, (q - 1) / 2, (q - 1) / 2} &&
			row.V2Nbrs == [3]int{0, (q + 1) / 2, (q + 1) / 2}
		check(fmt.Sprintf("Table 1 for q=%d", q), ok, fmt.Sprintf("|W|=%d |V1|=%d |V2|=%d", row.W, row.V1, row.V2))
	}

	// --- Algorithm 2 + Properties 1–3 + Lemma 7.2 / Cor 7.3 ---------------
	for _, q := range oddQs {
		pg, _ := er.New(q)
		l, err := er.NewLayout(pg, -1)
		if err != nil {
			check(fmt.Sprintf("Alg 2 layout q=%d", q), false, err.Error())
			continue
		}
		ok := l.NumClusters() == q
		for _, c := range l.Clusters {
			ok = ok && len(c) == q
		}
		ok = ok && l.EdgesToQuadricCluster(0) == q+1
		if q > 2 {
			ok = ok && l.EdgesBetweenClusters(0, 1) == q-2
		}
		check(fmt.Sprintf("Alg 2 + Properties 1-3 q=%d", q), ok,
			fmt.Sprintf("%d clusters, W↔C=%d, C↔C=%d", l.NumClusters(), l.EdgesToQuadricCluster(0), l.EdgesBetweenClusters(0, 1)))
	}

	// --- Figure 2: exact published values ---------------------------------
	d3, err3 := singer.DifferenceSet(3)
	check("Fig 2a: D(q=3) = {0,1,3,9}", err3 == nil && equalInts(d3, []int{0, 1, 3, 9}), fmt.Sprint(d3))
	d4, err4 := singer.DifferenceSet(4)
	check("Fig 2b: D(q=4) = {0,1,4,14,16}", err4 == nil && equalInts(d4, []int{0, 1, 4, 14, 16}), fmt.Sprint(d4))
	s3, _ := singer.New(3)
	check("Fig 2a: reflections(q=3) = {0,7,8,11}", equalInts(s3.ReflectionPoints(), []int{0, 7, 8, 11}),
		fmt.Sprint(s3.ReflectionPoints()))
	s4, _ := singer.New(4)
	check("Fig 2b: reflections(q=4) = {0,2,7,8,11}", equalInts(s4.ReflectionPoints(), []int{0, 2, 7, 8, 11}),
		fmt.Sprint(s4.ReflectionPoints()))

	// --- Definition 6.2 sweep ---------------------------------------------
	dsOK := true
	worstQ := -1
	for _, q := range numtheory.PrimePowersUpTo(2, 32) {
		d, err := singer.DifferenceSet(q)
		if err != nil || !singer.IsDifferenceSet(d, q*q+q+1) {
			dsOK = false
			worstQ = q
		}
	}
	check("Def 6.2: difference-set property, q ≤ 32", dsOK, failNote(dsOK, worstQ))

	// --- Theorem 6.6: explicit isomorphism ---------------------------------
	for _, q := range []int{2, 3, 4, 5} {
		inst, _ := core.NewInstance(q)
		m, ok := inst.VerifyIsomorphism()
		ok = ok && graph.VerifyMapping(inst.Singer.Topology(), inst.ER.G, m)
		check(fmt.Sprintf("Thm 6.6: S_%d ≅ ER_%d (explicit mapping)", q, q), ok, "")
	}

	// --- Table 2 ------------------------------------------------------------
	t2, _ := core.Table2(4)
	t2ok := len(t2) == 4 &&
		t2[0] == (singer.MaximalPathInfo{D0: 0, D1: 14, GCD: 7, K: 3, Start: 7, End: 0}) &&
		t2[1] == (singer.MaximalPathInfo{D0: 1, D1: 4, GCD: 3, K: 7, Start: 2, End: 11}) &&
		t2[2] == (singer.MaximalPathInfo{D0: 1, D1: 16, GCD: 3, K: 7, Start: 8, End: 11}) &&
		t2[3] == (singer.MaximalPathInfo{D0: 4, D1: 16, GCD: 3, K: 7, Start: 8, End: 2})
	check("Table 2: non-Hamiltonian paths of S_4 (exact)", t2ok, fmt.Sprintf("%d rows", len(t2)))

	// --- Theorem 7.13 / Cor 7.15 / Cor 7.20 --------------------------------
	for _, q := range []int{4, 5, 8, 9} {
		s, _ := singer.New(q)
		ok := true
		for _, p := range s.AllPairs() {
			if s.PathLen(p) != s.N/numtheory.GCD(p.D0-p.D1, s.N) {
				ok = false
			}
			path := s.MaximalPath(p)
			if len(path) != s.PathLen(p) || path[0] != s.ReflectionOf(p.D1) {
				ok = false
			}
		}
		phi := numtheory.Totient(s.N)
		ok = ok && len(s.HamiltonianPairs()) == phi/2
		check(fmt.Sprintf("Thm 7.13/Cor 7.15/Cor 7.20 q=%d", q), ok,
			fmt.Sprintf("%d Hamiltonian pairs = φ(%d)/2", len(s.HamiltonianPairs()), s.N))
	}

	// --- §7.1: Theorems 7.4–7.6, Lemma 7.8, Cor 7.7 ------------------------
	for _, q := range oddQs {
		inst, _ := core.NewInstance(q)
		e, err := inst.Embed(core.LowDepth)
		if err != nil {
			check(fmt.Sprintf("Alg 3 q=%d", q), false, err.Error())
			continue
		}
		ok := len(e.Forest) == q
		for _, tr := range e.Forest {
			ok = ok && tr.ValidateSpanning(inst.ER.G) == nil && tr.MaxDepth() <= 3
		}
		ok = ok && e.Model.MaxCongestion <= 2
		ok = ok && trees.OpposedReductionFlows(e.Forest) == nil
		ok = ok && e.Model.Aggregate >= float64(q)/2-1e-9
		check(fmt.Sprintf("Thm 7.4-7.6 + Lemma 7.8 + Cor 7.7 q=%d", q), ok,
			fmt.Sprintf("depth≤3 cong=%d BW=%.2f ≥ %.1f", e.Model.MaxCongestion, e.Model.Aggregate, float64(q)/2))
	}

	// --- §7.2: Theorem 7.19 + Lemma 7.17 ------------------------------------
	for _, q := range oddQs {
		inst, _ := core.NewInstance(q)
		e, err := inst.Embed(core.Hamiltonian)
		if err != nil {
			check(fmt.Sprintf("Hamiltonian forest q=%d", q), false, err.Error())
			continue
		}
		ok := len(e.Forest) == (q+1)/2 &&
			e.Model.MaxCongestion == 1 &&
			math.Abs(e.Model.Aggregate-bandwidth.Optimal(q, 1.0)) < 1e-9 &&
			e.MaxDepth == (inst.N()-1)/2
		check(fmt.Sprintf("Thm 7.19 + Lemma 7.17 q=%d", q), ok,
			fmt.Sprintf("%d disjoint trees, BW=%.1f=optimal, depth=%d", len(e.Forest), e.Model.Aggregate, e.MaxDepth))
	}

	// --- §7.3: disjoint sweep -----------------------------------------------
	sweep, err := core.DisjointSweep(sweepHi, 30, core.DefaultSeed)
	sweepOK := err == nil
	worst := 0
	for _, r := range sweep {
		if !r.Success {
			sweepOK = false
		}
		if r.TriesUsed > worst {
			worst = r.TriesUsed
		}
	}
	check(fmt.Sprintf("§7.3: ⌊(q+1)/2⌋ disjoint Hamiltonians, q ≤ %d, ≤30 tries", sweepHi),
		sweepOK, fmt.Sprintf("worst case %d tries", worst))

	// --- End-to-end: simulator agrees with the model ------------------------
	rows, err := core.SimulationComparison(5, 2000, netsim.Config{LinkLatency: 3, VCDepth: 6}, core.DefaultSeed)
	simOK := err == nil
	detail := ""
	for _, r := range rows {
		if r.Kind == core.LowDepth {
			simOK = simOK && r.MeasuredBW > 0.85*r.ModelBW
			detail = fmt.Sprintf("low-depth measured %.2f of model %.2f", r.MeasuredBW, r.ModelBW)
		}
	}
	check("End-to-end: cycle simulator ≈ Algorithm 1 model", simOK, detail)

	fmt.Println()
	if failures > 0 {
		fmt.Printf("papercheck: %d check(s) FAILED\n", failures)
		os.Exit(1)
	}
	fmt.Println("papercheck: all checks passed — the reproduction is faithful")
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func failNote(ok bool, q int) string {
	if ok {
		return ""
	}
	return fmt.Sprintf("first failure at q=%d", q)
}
