// treegen derives the Allreduce spanning-tree sets of the paper and
// reports their verified properties.
//
// Usage:
//
//	treegen -q 11 -method lowdepth      # Algorithm 3: q depth-3 trees
//	treegen -q 11 -method hamiltonian   # ⌊(q+1)/2⌋ edge-disjoint paths
//	treegen -q 11 -method single        # BFS baseline
//	treegen -q 11 -method lowdepth -print  # dump parent arrays
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"polarfly/internal/core"
	"polarfly/internal/routercfg"
	"polarfly/internal/serialize"
	"polarfly/internal/trees"
)

func main() {
	q := flag.Int("q", 7, "prime power order")
	method := flag.String("method", "lowdepth", "lowdepth | hamiltonian | single | depthtwo")
	print := flag.Bool("print", false, "print tree parent arrays")
	jsonOut := flag.Bool("json", false, "emit the forest as JSON (machine-readable)")
	cfgOut := flag.Bool("routercfg", false, "print per-router port/VC configuration summary")
	cfgJSON := flag.Bool("routercfg-json", false, "emit the full per-router configuration set as JSON")
	tries := flag.Int("tries", core.DefaultMISTries, "random MIS instances for the Hamiltonian search")
	seed := flag.Int64("seed", core.DefaultSeed, "random seed")
	flag.Parse()

	var kind core.EmbeddingKind
	switch *method {
	case "lowdepth":
		kind = core.LowDepth
	case "hamiltonian":
		kind = core.Hamiltonian
	case "single":
		kind = core.SingleTree
	case "depthtwo":
		kind = core.DepthTwo
	default:
		fmt.Fprintf(os.Stderr, "treegen: unknown method %q\n", *method)
		os.Exit(2)
	}

	inst, err := core.NewInstance(*q)
	if err != nil {
		fmt.Fprintln(os.Stderr, "treegen:", err)
		os.Exit(1)
	}
	e, err := inst.EmbedSeeded(kind, *tries, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "treegen:", err)
		os.Exit(1)
	}

	if *jsonOut {
		if err := serialize.EncodeForest(os.Stdout, e.Forest, e.Kind.String(), *q); err != nil {
			fmt.Fprintln(os.Stderr, "treegen:", err)
			os.Exit(1)
		}
		return
	}

	if *cfgJSON {
		cfgs, err := routercfg.Build(e.Topology, e.Forest)
		if err != nil {
			fmt.Fprintln(os.Stderr, "treegen:", err)
			os.Exit(1)
		}
		if err := serialize.EncodeRouterConfigs(os.Stdout, cfgs, e.Kind.String(), *q); err != nil {
			fmt.Fprintln(os.Stderr, "treegen:", err)
			os.Exit(1)
		}
		return
	}

	if *cfgOut {
		cfgs, err := routercfg.Build(e.Topology, e.Forest)
		if err != nil {
			fmt.Fprintln(os.Stderr, "treegen:", err)
			os.Exit(1)
		}
		if err := routercfg.Validate(e.Topology, e.Forest, cfgs); err != nil {
			fmt.Fprintln(os.Stderr, "treegen: config validation:", err)
			os.Exit(1)
		}
		fmt.Printf("router configurations for %v on ER_%d: %d routers, %d VC(s) per (direction, class)\n",
			e.Kind, *q, len(cfgs), routercfg.MaxVCs(cfgs))
		for _, c := range cfgs[:min(4, len(cfgs))] {
			fmt.Printf("router %d (%d ports):\n", c.Router, len(c.Ports))
			for _, tc := range c.Trees {
				fmt.Printf("  tree %d %-8v reduce-in=%d ports, bcast-out=%d ports\n",
					tc.Tree, tc.Role, len(tc.ReduceIn), len(tc.BcastOut))
			}
		}
		fmt.Println("(first 4 routers shown; all validated)")
		return
	}

	fmt.Printf("method=%v q=%d N=%d trees=%d\n", e.Kind, *q, inst.N(), len(e.Forest))
	fmt.Printf("max depth=%d  max congestion=%d  edge-disjoint=%v\n",
		e.MaxDepth, e.Model.MaxCongestion, trees.EdgeDisjoint(e.Forest))
	fmt.Printf("aggregate bandwidth=%.3f B (optimal %.1f B)\n",
		e.Model.Aggregate, float64(*q+1)/2)
	for i, t := range e.Forest {
		if err := t.ValidateSpanning(e.Topology); err != nil {
			fmt.Fprintf(os.Stderr, "treegen: tree %d invalid: %v\n", i, err)
			os.Exit(1)
		}
		fmt.Printf("  T_%d root=%d depth=%d levels=%v bandwidth=%.3f\n", i, t.Root, t.MaxDepth(), t.LevelSizes(), e.Model.PerTree[i])
		if *print {
			fmt.Print(indent(t.Render(2), "    "))
		}
	}
	if kind == core.LowDepth {
		if err := trees.OpposedReductionFlows(e.Forest); err != nil {
			fmt.Fprintln(os.Stderr, "treegen: Lemma 7.8 violated:", err)
			os.Exit(1)
		}
		fmt.Println("Lemma 7.8 verified: reduction flows on shared links are opposed")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// indent prefixes every line of s.
func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
