// pfgen generates and inspects PolarFly topologies.
//
// Usage:
//
//	pfgen -q 11            # summary statistics for ER_11
//	pfgen -q 11 -edges     # print the edge list (u v per line)
//	pfgen -q 11 -layout    # print the Algorithm 2 cluster layout
//	pfgen -q 11 -classes   # print the W/V1/V2 class of every router
package main

import (
	"flag"
	"fmt"
	"os"

	"polarfly/internal/core"
)

func main() {
	q := flag.Int("q", 7, "prime power order (radix = q+1)")
	edges := flag.Bool("edges", false, "print the edge list")
	layout := flag.Bool("layout", false, "print the PolarFly cluster layout (odd q)")
	classes := flag.Bool("classes", false, "print vertex classes")
	dot := flag.Bool("dot", false, "emit the topology as Graphviz DOT (vertex classes coloured)")
	flag.Parse()

	inst, err := core.NewInstance(*q)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pfgen:", err)
		os.Exit(1)
	}
	pg := inst.ER

	if *dot {
		fmt.Printf("graph ER_%d {\n  layout=circo;\n", *q)
		colors := map[string]string{"W": "tomato", "V1": "palegreen", "V2": "lightblue"}
		for v := 0; v < inst.N(); v++ {
			fmt.Printf("  %d [style=filled fillcolor=%s];\n", v, colors[pg.Type(v).String()])
		}
		for _, e := range pg.G.Edges() {
			fmt.Printf("  %d -- %d;\n", e.U, e.V)
		}
		fmt.Println("}")
		return
	}

	fmt.Printf("PolarFly ER_%d: N=%d routers, radix=%d, links=%d, diameter=%d\n",
		*q, inst.N(), inst.Radix(), pg.G.M(), pg.G.Diameter())
	w, v1, v2 := pg.CountByType()
	fmt.Printf("vertex classes: |W|=%d |V1|=%d |V2|=%d (Table 1)\n", w, v1, v2)
	fmt.Printf("Singer difference set: %v\n", inst.Singer.D)

	if *edges {
		for _, e := range pg.G.Edges() {
			fmt.Printf("%d %d\n", e.U, e.V)
		}
	}
	if *classes {
		for v := 0; v < inst.N(); v++ {
			fmt.Printf("%d %s %v\n", v, pg.Type(v), pg.Vecs[v])
		}
	}
	if *layout {
		if inst.Layout == nil {
			fmt.Fprintln(os.Stderr, "pfgen: layout requires odd q")
			os.Exit(1)
		}
		l := inst.Layout
		fmt.Printf("starter quadric: %d\n", l.Starter)
		fmt.Printf("quadric cluster W: %v\n", pg.Quadrics())
		for ci, cluster := range l.Clusters {
			fmt.Printf("C_%d center=%d quadric=%d members=%v\n",
				ci, l.Centers[ci], l.QuadricOfCenter[ci], cluster)
		}
	}
}
