// benchreport runs, snapshots, and gates on the repository's benchmarks
// and measured-vs-model scorecard.
//
// Usage:
//
//	benchreport run -label main -count 5            # run `go test -bench`, write BENCH_main.json
//	benchreport run -label pr -in bench.txt         # parse pre-captured bench output instead
//	benchreport compare BENCH_main.json BENCH_pr.json -threshold 0.10
//	                                                # diff two snapshots; exit 1 on regression
//	benchreport scorecard -q 3,5,7,11               # simulate every design point, check the
//	                                                # Alg. 1 / Thm 7.6 / Thm 7.19 contract
//	benchreport scorecard -degraded -q 7            # inject the worst-case link failure per
//	                                                # embedding, gate post-recovery bandwidth
//	                                                # against the core.Degrade prediction
//	benchreport timeline -q 7 -fault-at 200         # simulate with the streaming telemetry
//	                                                # sampler attached, write TIMELINE_<label>.json,
//	                                                # gate on bounds / footprint / ground truth
//	benchreport critpath -q 3,5,7,11                # reconstruct each run's causal critical
//	                                                # path, write CRITPATH_<label>.json, gate
//	                                                # on exact cycle conservation and blame
//	benchreport campaign -q 3,5,7,11 -runs 64       # seeded chaos campaign: randomized fault
//	                                                # plans per design point, write
//	                                                # CAMPAIGN_<label>.json, gate on per-run
//	                                                # invariants (exact outputs, flit
//	                                                # conservation, critpath conservation,
//	                                                # Degrade-tracked bandwidth, classified
//	                                                # terminations)
//	benchreport overhead BENCH_main.json            # pair X ↔ XSampled benchmarks, gate the
//	                                                # sampling cost against the 5% budget
//	benchreport hotcheck BENCH_main.json            # assert the hotalloc analyzer's static
//	                                                # allocation-free proof agrees with the
//	                                                # measured BenchmarkCycleLoop allocs/op
//
// Snapshots are written to BENCH_<label>.json (schema polarfly-bench/v1,
// see internal/perf); timeline sweeps go to TIMELINE_<label>.json with the
// same envelope. A markdown rendering goes to stdout. Exit codes: 0 clean,
// 1 failed benchmarks / gating regression / scorecard violation, 2 usage
// error.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"

	"polarfly/internal/analysis"
	"polarfly/internal/chaos"
	"polarfly/internal/netsim"
	"polarfly/internal/parrun"
	"polarfly/internal/perf"
)

// engineFlag registers the shared -engine flag: every simulation-backed
// subcommand can run on either netsim advance engine, and because the
// engines are differentially tested byte-identical the snapshots do not
// record the choice.
func engineFlag(fs *flag.FlagSet) *string {
	return fs.String("engine", "cycle", "netsim advance engine: cycle or event (byte-identical output)")
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage: benchreport <command> [flags]

commands:
  run        run (or parse with -in) go test benchmarks and snapshot them
  compare    diff two snapshots and gate on regressions
  scorecard  run the measured-vs-model simulation sweep
  timeline   run the streaming-telemetry sweep and emit a phase timeline
  critpath   run the causal critical-path sweep and gate on exact
             per-cycle blame conservation
  campaign   run the seeded chaos campaign and gate on per-run
             fault-schedule invariants
  overhead   gate the telemetry sampling cost from a bench snapshot
  hotcheck   cross-check the static hot-path allocation proof against
             measured allocs/op from a bench snapshot

run 'benchreport <command> -h' for the command's flags`)
}

// run is main with injectable args and streams, so the command can be
// tested end to end without a subprocess.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "run":
		return cmdRun(args[1:], stdout, stderr)
	case "compare":
		return cmdCompare(args[1:], stdout, stderr)
	case "scorecard":
		return cmdScorecard(args[1:], stdout, stderr)
	case "timeline":
		return cmdTimeline(args[1:], stdout, stderr)
	case "critpath":
		return cmdCritPath(args[1:], stdout, stderr)
	case "campaign":
		return cmdCampaign(args[1:], stdout, stderr)
	case "overhead":
		return cmdOverhead(args[1:], stdout, stderr)
	case "hotcheck":
		return cmdHotcheck(args[1:], stdout, stderr)
	case "help", "-h", "-help", "--help":
		usage(stdout)
		return 0
	}
	fmt.Fprintf(stderr, "benchreport: unknown command %q\n", args[0])
	usage(stderr)
	return 2
}

// cmdHotcheck closes the loop between the hotalloc analyzer and the
// benchmark record: the static claim "everything reachable from the
// //lint:hotpath roots is allocation-free" must agree with the measured
// allocs/op of the benchmarks that time exactly those roots. Either side
// failing alone is a red flag — a broken proof or a stale suppression.
func cmdHotcheck(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchreport hotcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	benchPrefix := fs.String("bench", "BenchmarkCycleLoop", "comma-separated benchmark name prefixes measuring the hot path; every prefix needs a measured witness")
	maxAllocs := fs.Float64("max", perf.DefaultHotAllocBudget, "maximum measured allocs/op consistent with the static claim")
	root := fs.String("root", ".", "module root for the static analysis")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: benchreport hotcheck [-bench prefix] [-max f] [-root dir] BENCH.json")
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "benchreport:", err)
		return 1
	}

	// Static half: hotalloc over the whole module must be clean.
	pkgs, err := analysis.LoadModule(*root)
	if err != nil {
		return fail(err)
	}
	var allow []analysis.AllowRule
	if data, err := os.ReadFile(filepath.Join(*root, "repolint.allow")); err == nil {
		if allow, err = analysis.ParseAllowFile(string(data)); err != nil {
			return fail(err)
		}
	}
	diags := analysis.Run(pkgs, []*analysis.Analyzer{analysis.HotAlloc}, allow)
	for _, d := range diags {
		fmt.Fprintln(stderr, "benchreport: FAIL static:", d)
	}
	if len(diags) > 0 {
		return 1
	}

	// Measured half: the hot-loop benchmarks must corroborate the proof.
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return fail(err)
	}
	defer func() { _ = f.Close() }()
	snap, err := perf.DecodeSnapshot(f)
	if err != nil {
		return fail(err)
	}
	var results []perf.HotCheckResult
	for _, prefix := range strings.Split(*benchPrefix, ",") {
		if prefix = strings.TrimSpace(prefix); prefix == "" {
			continue
		}
		rs, err := perf.HotAllocCrossCheck(snap, prefix, *maxAllocs)
		if err != nil {
			return fail(err)
		}
		results = append(results, rs...)
	}
	bad := 0
	for _, r := range results {
		status := "ok"
		if !r.OK {
			status = "FAIL"
			bad++
		}
		fmt.Fprintf(stdout, "hotcheck: %-4s %s  allocs/op=%g (budget %g)\n", status, r.Name, r.Allocs, *maxAllocs)
	}
	if bad > 0 {
		fmt.Fprintf(stderr, "benchreport: %d benchmark(s) contradict the static allocation-free claim\n", bad)
		return 1
	}
	fmt.Fprintf(stdout, "hotcheck: static hotalloc proof and %d measured benchmark(s) agree\n", len(results))
	return 0
}

// sanitizeLabel maps a label to the filename-safe alphabet so
// "feature/x y" cannot escape the output directory or break globbing.
func sanitizeLabel(label string) string {
	var b strings.Builder
	for _, r := range label {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			b.WriteRune(r)
		default:
			b.WriteRune('-')
		}
	}
	if b.Len() == 0 {
		return "snapshot"
	}
	return b.String()
}

func snapshotPath(dir, label string) string {
	return filepath.Join(dir, "BENCH_"+sanitizeLabel(label)+".json")
}

func writeSnapshot(path string, s *perf.Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteJSON(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func cmdRun(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchreport run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	label := fs.String("label", "local", "snapshot label; output file is BENCH_<label>.json")
	in := fs.String("in", "", "parse this pre-captured `go test -bench` output file ('-' for stdin) instead of running go test")
	benchRe := fs.String("bench", ".", "benchmark regex passed to go test -bench")
	benchtime := fs.String("benchtime", "", "go test -benchtime value (e.g. 1x, 100ms); empty for the default")
	count := fs.Int("count", 5, "go test -count repetitions (run-to-run spread needs >1)")
	pkgs := fs.String("pkg", "./...", "comma-separated package patterns passed to go test")
	outDir := fs.String("out", ".", "directory for the BENCH_<label>.json snapshot")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "benchreport:", err)
		return 1
	}

	var raw io.Reader
	benchFailed := false
	switch {
	case *in == "-":
		raw = os.Stdin
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			return fail(err)
		}
		defer func() { _ = f.Close() }()
		raw = f
	default:
		gt := []string{"test", "-run", "^$", "-bench", *benchRe, "-benchmem"}
		if *benchtime != "" {
			gt = append(gt, "-benchtime", *benchtime)
		}
		if *count > 1 {
			gt = append(gt, "-count", strconv.Itoa(*count))
		}
		// -pkg accepts a comma-separated list so one run can cover several
		// packages (e.g. ./internal/netsim,./internal/tsdb) — required for
		// the overhead gate, which pairs base and sampled benchmarks from
		// the same snapshot.
		for _, p := range strings.Split(*pkgs, ",") {
			if p = strings.TrimSpace(p); p != "" {
				gt = append(gt, p)
			}
		}
		var buf bytes.Buffer
		cmd := exec.Command("go", gt...)
		// Tee the raw bench output to stderr so progress is visible while
		// the buffer feeds the parser; stdout stays reserved for markdown.
		cmd.Stdout = io.MultiWriter(&buf, stderr)
		cmd.Stderr = stderr
		if err := cmd.Run(); err != nil {
			// go test exits 1 when a benchmark fails; the output still
			// parses, so record the failure instead of bailing.
			if _, ok := err.(*exec.ExitError); !ok {
				return fail(err)
			}
			benchFailed = true
		}
		raw = &buf
	}

	parsed, err := perf.ParseBench(raw)
	if err != nil {
		return fail(err)
	}
	snap := &perf.Snapshot{
		Schema:     perf.SnapshotSchema,
		Label:      *label,
		Kind:       perf.KindBench,
		GoVersion:  runtime.Version(),
		Packages:   parsed.Packages,
		Failed:     append(parsed.Failed, parsed.FailedPackages...),
		Benchmarks: perf.Summarize(parsed.Results),
	}
	path := snapshotPath(*outDir, *label)
	if err := writeSnapshot(path, snap); err != nil {
		return fail(err)
	}
	if err := perf.WriteBenchMarkdown(stdout, snap); err != nil {
		return fail(err)
	}
	fmt.Fprintf(stderr, "benchreport: wrote %s (%d benchmarks)\n", path, len(snap.Benchmarks))
	if benchFailed || !parsed.OK() {
		fmt.Fprintf(stderr, "benchreport: run had failures: %s\n", strings.Join(snap.Failed, ", "))
		return 1
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(stderr, "benchreport: no benchmarks matched")
		return 1
	}
	return 0
}

func cmdCompare(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchreport compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", 0.10, "relative change below which a delta is noise")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: benchreport compare [-threshold f] OLD.json NEW.json")
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "benchreport:", err)
		return 1
	}
	load := func(path string) (*perf.Snapshot, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer func() { _ = f.Close() }()
		return perf.DecodeSnapshot(f)
	}
	oldSnap, err := load(fs.Arg(0))
	if err != nil {
		return fail(err)
	}
	newSnap, err := load(fs.Arg(1))
	if err != nil {
		return fail(err)
	}
	cmp := perf.Compare(oldSnap, newSnap, *threshold)
	if err := perf.WriteCompareMarkdown(stdout, cmp); err != nil {
		return fail(err)
	}
	if !cmp.OK() {
		fmt.Fprintf(stderr, "benchreport: %d gating regression(s) beyond %.0f%%\n",
			cmp.Regressions, 100**threshold)
		return 1
	}
	return 0
}

func cmdScorecard(args []string, stdout, stderr io.Writer) int {
	def := perf.DefaultScorecardConfig()
	defDeg := perf.DefaultDegradedConfig()
	fs := flag.NewFlagSet("benchreport scorecard", flag.ContinueOnError)
	fs.SetOutput(stderr)
	qList := fs.String("q", joinInts(def.Qs), "comma-separated PolarFly orders to sweep")
	m := fs.Int("m", def.M, "Allreduce vector elements")
	latency := fs.Int("latency", def.LinkLatency, "link latency in cycles")
	vc := fs.Int("vc", def.VCDepth, "virtual channel depth in flits")
	seed := fs.Int64("seed", def.Seed, "workload seed")
	tol := fs.Float64("tol", def.Tolerance, "measured-vs-model tolerance (relative)")
	label := fs.String("label", "scorecard", "snapshot label; output file is BENCH_<label>.json")
	outDir := fs.String("out", ".", "directory for the BENCH_<label>.json snapshot")
	degraded := fs.Bool("degraded", false, "run the fault-injection sweep instead: inject the worst-case link failure per embedding and gate measured post-recovery bandwidth against the core.Degrade prediction")
	failAt := fs.Int("fail-at", defDeg.FailAt, "cycle the worst-case link fails (with -degraded)")
	parallel := fs.Int("parallel", 0, "simulation worker-pool size; 1 forces serial, <1 means GOMAXPROCS (output is byte-identical either way)")
	engine := engineFlag(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "benchreport:", err)
		return 1
	}
	qs, err := parseInts(*qList)
	if err != nil {
		fmt.Fprintln(stderr, "benchreport: -q:", err)
		return 2
	}
	eng, err := netsim.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(stderr, "benchreport: -engine:", err)
		return 2
	}
	if *degraded {
		return cmdScorecardDegraded(qs, *m, *latency, *vc, *failAt, *parallel, *seed, *tol, eng, *label, *outDir, stdout, stderr)
	}
	cfg := perf.ScorecardConfig{
		Qs: qs, M: *m, LinkLatency: *latency, VCDepth: *vc,
		Seed: *seed, Tolerance: *tol, Parallel: *parallel, Engine: eng,
	}
	points, err := perf.Scorecard(cfg)
	if err != nil {
		return fail(err)
	}
	snap := &perf.Snapshot{
		Schema:          perf.SnapshotSchema,
		Label:           *label,
		Kind:            perf.KindScorecard,
		GoVersion:       runtime.Version(),
		Scorecard:       points,
		ScorecardConfig: &cfg,
	}
	path := snapshotPath(*outDir, *label)
	if err := writeSnapshot(path, snap); err != nil {
		return fail(err)
	}
	if err := perf.WriteScorecardMarkdown(stdout, snap); err != nil {
		return fail(err)
	}
	fmt.Fprintf(stderr, "benchreport: wrote %s (%d design points)\n", path, len(points))
	if fails := perf.ScorecardFailures(points, cfg.Tolerance); len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintln(stderr, "benchreport: FAIL:", f)
		}
		return 1
	}
	return 0
}

// cmdScorecardDegraded runs the fault-injection sweep for every listed q:
// the worst-case single link failure per embedding, gated on recovery
// happening, outputs staying numerically correct, and the measured
// post-recovery bandwidth landing within tolerance of core.Degrade.
func cmdScorecardDegraded(qs []int, m, latency, vc, failAt, parallel int, seed int64, tol float64,
	engine netsim.Engine, label, outDir string, stdout, stderr io.Writer) int {
	fail := func(err error) int {
		fmt.Fprintln(stderr, "benchreport:", err)
		return 1
	}
	// Each q's fault sweep is independent; run them on a parrun pool and
	// flatten in input order so the snapshot matches the serial loop
	// byte for byte. DegradedScorecard fans out across embeddings with
	// the same pool size internally.
	cfgs := make([]perf.DegradedConfig, len(qs))
	for i, q := range qs {
		cfgs[i] = perf.DegradedConfig{
			Q: q, M: m, LinkLatency: latency, VCDepth: vc,
			FailAt: failAt, Seed: seed, Tolerance: tol, Parallel: parallel,
			Engine: engine,
		}
	}
	perQ, err := parrun.Map(parallel, len(cfgs), func(i int) ([]perf.DegradedPoint, error) {
		return perf.DegradedScorecard(cfgs[i])
	})
	if err != nil {
		return fail(err)
	}
	var points []perf.DegradedPoint
	for _, pts := range perQ {
		points = append(points, pts...)
	}
	var lastCfg perf.DegradedConfig
	if len(cfgs) > 0 {
		lastCfg = cfgs[len(cfgs)-1]
	}
	snap := &perf.Snapshot{
		Schema:         perf.SnapshotSchema,
		Label:          label,
		Kind:           perf.KindDegraded,
		GoVersion:      runtime.Version(),
		Degraded:       points,
		DegradedConfig: &lastCfg,
	}
	path := snapshotPath(outDir, label)
	if err := writeSnapshot(path, snap); err != nil {
		return fail(err)
	}
	if err := perf.WriteDegradedMarkdown(stdout, snap); err != nil {
		return fail(err)
	}
	fmt.Fprintf(stderr, "benchreport: wrote %s (%d fault-injected points)\n", path, len(points))
	if fails := perf.DegradedFailures(points); len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintln(stderr, "benchreport: FAIL:", f)
		}
		return 1
	}
	return 0
}

// cmdTimeline runs the streaming-telemetry sweep: one sampled simulation
// per embedding of the design point, a TIMELINE_<label>.json snapshot,
// the markdown phase timeline on stdout, and a non-zero exit when any run
// violates the telemetry contract (bounds, footprint, ground truth).
func cmdTimeline(args []string, stdout, stderr io.Writer) int {
	def := perf.DefaultTimelineConfig()
	fs := flag.NewFlagSet("benchreport timeline", flag.ContinueOnError)
	fs.SetOutput(stderr)
	q := fs.Int("q", def.Q, "PolarFly order")
	m := fs.Int("m", def.M, "Allreduce vector elements")
	latency := fs.Int("latency", def.LinkLatency, "link latency in cycles")
	vc := fs.Int("vc", def.VCDepth, "virtual channel depth in flits")
	sampleEvery := fs.Int("sample-every", def.SampleEvery, "telemetry sampling window in cycles")
	windows := fs.Int("windows", def.Windows, "ring capacity per resolution level")
	levels := fs.Int("levels", def.Levels, "downsampling levels (1×, 8×, 64×, ...)")
	factor := fs.Int("factor", def.Factor, "downsampling factor between levels")
	seed := fs.Int64("seed", def.Seed, "workload seed")
	tol := fs.Float64("tol", def.Tolerance, "bound-check tolerance (relative)")
	maxBytes := fs.Int("max-bytes", 0, "fail if the sampler footprint exceeds this many bytes per run (0 disables)")
	faultAt := fs.Int("fault-at", 0, "inject a link failure at this cycle on multi-tree embeddings and cross-check the telemetry-derived events against the trace (0 disables)")
	parallel := fs.Int("parallel", 0, "simulation worker-pool size; 1 forces serial, <1 means GOMAXPROCS (output is byte-identical either way)")
	engine := engineFlag(fs)
	label := fs.String("label", "timeline", "snapshot label; output file is TIMELINE_<label>.json")
	outDir := fs.String("out", ".", "directory for the TIMELINE_<label>.json snapshot")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "benchreport:", err)
		return 1
	}
	eng, err := netsim.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(stderr, "benchreport: -engine:", err)
		return 2
	}
	cfg := perf.TimelineConfig{
		Q: *q, M: *m, LinkLatency: *latency, VCDepth: *vc,
		SampleEvery: *sampleEvery, Windows: *windows, Levels: *levels, Factor: *factor,
		Seed: *seed, Tolerance: *tol, MaxBytes: *maxBytes, FaultAt: *faultAt,
		Parallel: *parallel, Engine: eng,
	}
	runs, err := perf.Timeline(cfg)
	if err != nil {
		return fail(err)
	}
	snap := &perf.Snapshot{
		Schema:         perf.SnapshotSchema,
		Label:          *label,
		Kind:           perf.KindTimeline,
		GoVersion:      runtime.Version(),
		Timeline:       runs,
		TimelineConfig: &cfg,
	}
	path := filepath.Join(*outDir, "TIMELINE_"+sanitizeLabel(*label)+".json")
	if err := writeSnapshot(path, snap); err != nil {
		return fail(err)
	}
	if err := perf.WriteTimelineMarkdown(stdout, snap); err != nil {
		return fail(err)
	}
	fmt.Fprintf(stderr, "benchreport: wrote %s (%d embeddings)\n", path, len(runs))
	if fails := perf.TimelineFailures(runs, cfg); len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintln(stderr, "benchreport: FAIL:", f)
		}
		return 1
	}
	return 0
}

// cmdCritPath runs the causal critical-path sweep: every embedding of
// every listed q fault-free and under the worst-case link failure, a
// CRITPATH_<label>.json snapshot, the blame scorecard on stdout, and a
// non-zero exit when any run violates the conservation contract (blame
// not summing exactly to the cycle count, unattributed residue, a
// fault-free run not dominated by serialization, or recovery blame
// disagreeing with the collector's measured latency).
func cmdCritPath(args []string, stdout, stderr io.Writer) int {
	def := perf.DefaultCritPathConfig()
	fs := flag.NewFlagSet("benchreport critpath", flag.ContinueOnError)
	fs.SetOutput(stderr)
	qList := fs.String("q", joinInts(def.Qs), "comma-separated PolarFly orders to sweep")
	m := fs.Int("m", def.M, "Allreduce vector elements")
	latency := fs.Int("latency", def.LinkLatency, "link latency in cycles")
	vc := fs.Int("vc", def.VCDepth, "virtual channel depth in flits")
	failAt := fs.Int("fail-at", def.FailAt, "cycle the worst-case link fails in the faulted half of the sweep")
	seed := fs.Int64("seed", def.Seed, "workload seed")
	parallel := fs.Int("parallel", 0, "simulation worker-pool size; 1 forces serial, <1 means GOMAXPROCS (output is byte-identical either way)")
	engine := engineFlag(fs)
	label := fs.String("label", "critpath", "snapshot label; output file is CRITPATH_<label>.json")
	outDir := fs.String("out", ".", "directory for the CRITPATH_<label>.json snapshot")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "benchreport:", err)
		return 1
	}
	qs, err := parseInts(*qList)
	if err != nil {
		fmt.Fprintln(stderr, "benchreport: -q:", err)
		return 2
	}
	eng, err := netsim.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(stderr, "benchreport: -engine:", err)
		return 2
	}
	cfg := perf.CritPathConfig{
		Qs: qs, M: *m, LinkLatency: *latency, VCDepth: *vc,
		FailAt: *failAt, Seed: *seed, Parallel: *parallel, Engine: eng,
	}
	points, err := perf.CritPath(cfg)
	if err != nil {
		return fail(err)
	}
	snap := &perf.Snapshot{
		Schema:         perf.SnapshotSchema,
		Label:          *label,
		Kind:           perf.KindCritPath,
		GoVersion:      runtime.Version(),
		CritPath:       points,
		CritPathConfig: &cfg,
	}
	path := filepath.Join(*outDir, "CRITPATH_"+sanitizeLabel(*label)+".json")
	if err := writeSnapshot(path, snap); err != nil {
		return fail(err)
	}
	if err := perf.WriteCritPathMarkdown(stdout, snap); err != nil {
		return fail(err)
	}
	fmt.Fprintf(stderr, "benchreport: wrote %s (%d design points)\n", path, len(points))
	if fails := perf.CritPathFailures(points); len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintln(stderr, "benchreport: FAIL:", f)
		}
		return 1
	}
	return 0
}

// cmdCampaign runs the seeded chaos campaign: thousands of randomized
// fault plans across the design points, each checked against the
// fault-schedule invariants (exact outputs, flit conservation, critpath
// conservation, Degrade-tracked post-recovery bandwidth, and classified
// terminations). It writes CAMPAIGN_<label>.json, renders the
// survival/classification table on stdout, and exits 1 on any
// violation.
func cmdCampaign(args []string, stdout, stderr io.Writer) int {
	def := chaos.DefaultConfig()
	fs := flag.NewFlagSet("benchreport campaign", flag.ContinueOnError)
	fs.SetOutput(stderr)
	qList := fs.String("q", joinInts(def.Qs), "comma-separated PolarFly orders to sweep")
	embeddings := fs.String("embeddings", strings.Join(def.Embeddings, ","), "comma-separated embedding kinds per q")
	runs := fs.Int("runs", def.Runs, "randomized fault plans per (q, embedding) design point")
	m := fs.Int("m", def.M, "Allreduce vector elements")
	latency := fs.Int("latency", def.LinkLatency, "link latency in cycles")
	vc := fs.Int("vc", def.VCDepth, "virtual channel depth in flits")
	seed := fs.Int64("seed", def.Seed, "campaign seed; each run's plan derives from (seed, q, embedding, run)")
	tolerance := fs.Float64("tolerance", def.Tolerance, "relative error allowed between measured post-recovery bandwidth and the Degrade prediction")
	parallel := fs.Int("parallel", 0, "simulation worker-pool size; 1 forces serial, <1 means GOMAXPROCS (output is byte-identical either way)")
	engine := engineFlag(fs)
	label := fs.String("label", "campaign", "snapshot label; output file is CAMPAIGN_<label>.json")
	outDir := fs.String("out", ".", "directory for the CAMPAIGN_<label>.json snapshot")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "benchreport:", err)
		return 1
	}
	qs, err := parseInts(*qList)
	if err != nil {
		fmt.Fprintln(stderr, "benchreport: -q:", err)
		return 2
	}
	eng, err := netsim.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(stderr, "benchreport: -engine:", err)
		return 2
	}
	var kinds []string
	for _, part := range strings.Split(*embeddings, ",") {
		if part = strings.TrimSpace(part); part != "" {
			kinds = append(kinds, part)
		}
	}
	cfg := def
	cfg.Qs = qs
	cfg.Embeddings = kinds
	cfg.Runs = *runs
	cfg.M = *m
	cfg.LinkLatency = *latency
	cfg.VCDepth = *vc
	cfg.Seed = *seed
	cfg.Tolerance = *tolerance
	cfg.Parallel = *parallel
	cfg.Engine = eng
	rep, err := chaos.Campaign(cfg)
	if err != nil {
		return fail(err)
	}
	rep.Label = *label
	path := filepath.Join(*outDir, "CAMPAIGN_"+sanitizeLabel(*label)+".json")
	f, err := os.Create(path)
	if err != nil {
		return fail(err)
	}
	if err := rep.WriteJSON(f); err != nil {
		_ = f.Close()
		return fail(err)
	}
	if err := f.Close(); err != nil {
		return fail(err)
	}
	if err := chaos.WriteMarkdown(stdout, rep); err != nil {
		return fail(err)
	}
	total := 0
	for _, pt := range rep.Points {
		total += pt.Runs
	}
	fmt.Fprintf(stderr, "benchreport: wrote %s (%d design points, %d runs)\n", path, len(rep.Points), total)
	if fails := rep.Failures(); len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintln(stderr, "benchreport: FAIL:", f)
		}
		return 1
	}
	return 0
}

// cmdOverhead loads a bench snapshot, pairs every XSampled benchmark with
// its X twin, and gates the median ns/op overhead against the budget.
func cmdOverhead(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchreport overhead", flag.ContinueOnError)
	fs.SetOutput(stderr)
	max := fs.Float64("max", perf.DefaultMaxOverhead, "maximum allowed sampling overhead (relative ns/op)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: benchreport overhead [-max f] BENCH.json")
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "benchreport:", err)
		return 1
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return fail(err)
	}
	defer func() { _ = f.Close() }()
	snap, err := perf.DecodeSnapshot(f)
	if err != nil {
		return fail(err)
	}
	pairs := perf.TelemetryOverhead(snap)
	if err := perf.WriteOverheadMarkdown(stdout, pairs, *max); err != nil {
		return fail(err)
	}
	if len(pairs) == 0 {
		fmt.Fprintln(stderr, "benchreport: no base↔sampled benchmark pairs in the snapshot; run both packages into one snapshot (e.g. -pkg ./internal/netsim,./internal/tsdb)")
		return 1
	}
	if fails := perf.OverheadFailures(pairs, *max); len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintln(stderr, "benchreport: FAIL:", f)
		}
		return 1
	}
	return 0
}

func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ",")
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
