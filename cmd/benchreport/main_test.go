package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"polarfly/internal/chaos"
	"polarfly/internal/perf"
)

// writeFixture drops a pre-captured bench output file into dir.
func writeFixture(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const benchFixture = `goos: linux
pkg: polarfly
BenchmarkAlpha-8 	 100	 1000 ns/op	 64 B/op	 2 allocs/op
BenchmarkAlpha-8 	 100	 1100 ns/op	 64 B/op	 2 allocs/op
BenchmarkBeta-8  	  50	 2000 ns/op	128 B/op	 4 allocs/op
BenchmarkBeta-8  	  50	 2100 ns/op	128 B/op	 4 allocs/op
PASS
ok  	polarfly	1.234s
`

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func loadSnapshot(t *testing.T, path string) *perf.Snapshot {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Close() }()
	s, err := perf.DecodeSnapshot(f)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRunFromFixture(t *testing.T) {
	dir := t.TempDir()
	in := writeFixture(t, dir, "bench.txt", benchFixture)
	code, stdout, _ := runCLI(t, "run", "-in", in, "-label", "base", "-out", dir)
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	snap := loadSnapshot(t, filepath.Join(dir, "BENCH_base.json"))
	if snap.Kind != perf.KindBench || snap.Label != "base" {
		t.Errorf("snapshot kind=%q label=%q", snap.Kind, snap.Label)
	}
	if len(snap.Benchmarks) != 2 {
		t.Fatalf("%d benchmarks, want 2", len(snap.Benchmarks))
	}
	if snap.Benchmarks[0].Name != "BenchmarkAlpha" || snap.Benchmarks[0].Procs != 8 || snap.Benchmarks[0].Runs != 2 {
		t.Errorf("first summary %+v", snap.Benchmarks[0])
	}
	if snap.GoVersion == "" {
		t.Error("GoVersion not recorded")
	}
	if !strings.Contains(stdout, "BenchmarkAlpha") || !strings.Contains(stdout, "| --- |") {
		t.Errorf("markdown table missing from stdout:\n%s", stdout)
	}
}

func TestRunFromFixtureWithFailures(t *testing.T) {
	dir := t.TempDir()
	in := writeFixture(t, dir, "bench.txt", benchFixture+
		"--- FAIL: BenchmarkBroken\nFAIL\tpolarfly/internal/netsim\t1.0s\n")
	code, _, stderr := runCLI(t, "run", "-in", in, "-label", "bad", "-out", dir)
	if code != 1 {
		t.Fatalf("exit %d, want 1 for a run with failed benchmarks", code)
	}
	if !strings.Contains(stderr, "BenchmarkBroken") {
		t.Errorf("stderr does not name the failed benchmark:\n%s", stderr)
	}
	snap := loadSnapshot(t, filepath.Join(dir, "BENCH_bad.json"))
	if len(snap.Failed) != 2 { // benchmark + package
		t.Errorf("snapshot failed list %v, want benchmark and package", snap.Failed)
	}
}

// TestCompareExitCodes is the acceptance check: identical snapshots exit
// 0; an injected ns/op regression exits 1.
func TestCompareExitCodes(t *testing.T) {
	dir := t.TempDir()
	in := writeFixture(t, dir, "bench.txt", benchFixture)
	if code, _, _ := runCLI(t, "run", "-in", in, "-label", "old", "-out", dir); code != 0 {
		t.Fatal("baseline run failed")
	}
	oldPath := filepath.Join(dir, "BENCH_old.json")

	// Identical snapshots: exit 0.
	code, stdout, _ := runCLI(t, "compare", oldPath, oldPath)
	if code != 0 {
		t.Errorf("compare(identical) exit %d, want 0\n%s", code, stdout)
	}

	// Inject a 3× ns/op regression into BenchmarkAlpha and re-compare.
	snap := loadSnapshot(t, oldPath)
	for i := range snap.Benchmarks {
		for j := range snap.Benchmarks[i].Metrics {
			if snap.Benchmarks[i].Name == "BenchmarkAlpha" && snap.Benchmarks[i].Metrics[j].Unit == "ns/op" {
				m := &snap.Benchmarks[i].Metrics[j]
				m.Min *= 3
				m.Median *= 3
				m.Mean *= 3
				m.Max *= 3
			}
		}
	}
	snap.Label = "regressed"
	newPath := filepath.Join(dir, "BENCH_regressed.json")
	f, err := os.Create(newPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	code, stdout, stderr := runCLI(t, "compare", oldPath, newPath)
	if code != 1 {
		t.Errorf("compare(regressed) exit %d, want 1\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "**regression**") {
		t.Errorf("markdown does not flag the regression:\n%s", stdout)
	}
	if !strings.Contains(stderr, "regression") {
		t.Errorf("stderr does not mention the regression:\n%s", stderr)
	}
}

func TestCompareRejectsBadSchema(t *testing.T) {
	dir := t.TempDir()
	bad := writeFixture(t, dir, "bad.json", `{"schema":"other/v9","label":"x"}`)
	if code, _, stderr := runCLI(t, "compare", bad, bad); code != 1 ||
		!strings.Contains(stderr, "schema") {
		t.Errorf("exit %d stderr %q, want schema rejection", code, stderr)
	}
}

// TestScorecardSmoke runs the real simulator at the smallest design point.
func TestScorecardSmoke(t *testing.T) {
	dir := t.TempDir()
	code, stdout, stderr := runCLI(t, "scorecard", "-q", "3", "-m", "4096", "-out", dir, "-label", "smoke")
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstderr: %s", code, stderr)
	}
	snap := loadSnapshot(t, filepath.Join(dir, "BENCH_smoke.json"))
	if snap.Kind != perf.KindScorecard || len(snap.Scorecard) != 3 {
		t.Fatalf("kind=%q points=%d, want scorecard with 3 points", snap.Kind, len(snap.Scorecard))
	}
	if snap.ScorecardConfig == nil || snap.ScorecardConfig.M != 4096 {
		t.Errorf("scorecard config not persisted: %+v", snap.ScorecardConfig)
	}
	if !strings.Contains(stdout, "thm7.6") || !strings.Contains(stdout, "thm7.19") {
		t.Errorf("markdown does not cite the theorem bounds:\n%s", stdout)
	}
}

// TestScorecardDegradedSmoke runs the fault-injection sweep at the
// smallest design point: single tree aborts, multi-tree points recover
// within tolerance of the Degrade prediction.
func TestScorecardDegradedSmoke(t *testing.T) {
	dir := t.TempDir()
	code, stdout, stderr := runCLI(t, "scorecard", "-degraded",
		"-q", "3", "-m", "6144", "-fail-at", "800", "-out", dir, "-label", "degsmoke")
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstderr: %s", code, stderr)
	}
	snap := loadSnapshot(t, filepath.Join(dir, "BENCH_degsmoke.json"))
	if snap.Kind != perf.KindDegraded || len(snap.Degraded) != 3 {
		t.Fatalf("kind=%q points=%d, want degraded-scorecard with 3 points", snap.Kind, len(snap.Degraded))
	}
	if snap.DegradedConfig == nil || snap.DegradedConfig.FailAt != 800 {
		t.Errorf("degraded config not persisted: %+v", snap.DegradedConfig)
	}
	if !strings.Contains(stdout, "aborted as predicted") {
		t.Errorf("markdown does not show the single-tree abort:\n%s", stdout)
	}
}

// TestCritPathSmoke runs the causal critical-path sweep at the smallest
// design point: every analysed run must conserve its cycle count exactly
// across the blame classes, fault-free runs must be serialization-
// dominated, and the faulted single tree must abort.
func TestCritPathSmoke(t *testing.T) {
	dir := t.TempDir()
	code, stdout, stderr := runCLI(t, "critpath",
		"-q", "3", "-m", "2048", "-fail-at", "300", "-out", dir, "-label", "cpsmoke")
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstderr: %s", code, stderr)
	}
	snap := loadSnapshot(t, filepath.Join(dir, "CRITPATH_cpsmoke.json"))
	if snap.Kind != perf.KindCritPath || len(snap.CritPath) != 6 {
		t.Fatalf("kind=%q points=%d, want critpath with 6 points", snap.Kind, len(snap.CritPath))
	}
	if snap.CritPathConfig == nil || snap.CritPathConfig.FailAt != 300 {
		t.Errorf("critpath config not persisted: %+v", snap.CritPathConfig)
	}
	for _, pt := range snap.CritPath {
		if !pt.AllTreesLost && !pt.ConservationOK {
			t.Errorf("q=%d %s faulted=%v: conservation violated in snapshot", pt.Q, pt.Embedding, pt.Faulted)
		}
	}
	for _, want := range []string{"serialization", "aborted as predicted", "fault-free"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("markdown missing %q:\n%s", want, stdout)
		}
	}
}

// TestCampaignSmoke runs a small seeded chaos campaign end to end: every
// run must complete with the invariants intact or terminate classified,
// the report must decode back, and the markdown must carry the
// survival/classification table.
func TestCampaignSmoke(t *testing.T) {
	dir := t.TempDir()
	code, stdout, stderr := runCLI(t, "campaign",
		"-q", "3", "-embeddings", "low-depth,hamiltonian", "-runs", "8",
		"-m", "512", "-out", dir, "-label", "camsmoke")
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstderr: %s", code, stderr)
	}
	f, err := os.Open(filepath.Join(dir, "CAMPAIGN_camsmoke.json"))
	if err != nil {
		t.Fatalf("campaign snapshot missing: %v", err)
	}
	defer func() { _ = f.Close() }()
	rep, err := chaos.DecodeReport(f)
	if err != nil {
		t.Fatalf("DecodeReport: %v", err)
	}
	if rep.Label != "camsmoke" || len(rep.Points) != 2 {
		t.Fatalf("label=%q points=%d, want camsmoke with 2 points", rep.Label, len(rep.Points))
	}
	for _, pt := range rep.Points {
		if pt.Runs != 8 {
			t.Errorf("q=%d %s: runs %d, want 8", pt.Q, pt.Embedding, pt.Runs)
		}
		if got := pt.Completed + pt.AllTreesLost + pt.RecoveryLimit; got != pt.Runs {
			t.Errorf("q=%d %s: %d of %d runs classified", pt.Q, pt.Embedding, got, pt.Runs)
		}
	}
	if fails := rep.Failures(); len(fails) != 0 {
		t.Errorf("campaign recorded violations:\n%s", strings.Join(fails, "\n"))
	}
	for _, want := range []string{"Chaos campaign", "all-trees-lost", "classified sentinel"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("markdown missing %q:\n%s", want, stdout)
		}
	}
}

// TestScorecardFailsOutsideTolerance: an absurdly tight tolerance must
// trip the gate (pipeline fill keeps measured below model).
func TestScorecardFailsOutsideTolerance(t *testing.T) {
	dir := t.TempDir()
	code, _, stderr := runCLI(t, "scorecard", "-q", "3", "-m", "256", "-tol", "0.0001", "-out", dir)
	if code != 1 {
		t.Fatalf("exit %d, want 1 at near-zero tolerance\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "FAIL") {
		t.Errorf("stderr does not list the violations:\n%s", stderr)
	}
}

func TestUsageAndUnknownCommand(t *testing.T) {
	if code, _, _ := runCLI(t); code != 2 {
		t.Error("no-args exit != 2")
	}
	if code, _, stderr := runCLI(t, "frobnicate"); code != 2 || !strings.Contains(stderr, "unknown command") {
		t.Errorf("unknown command: exit %d stderr %q", code, stderr)
	}
	if code, stdout, _ := runCLI(t, "help"); code != 0 || !strings.Contains(stdout, "scorecard") {
		t.Error("help does not document the subcommands")
	}
}

func TestSanitizeLabel(t *testing.T) {
	cases := map[string]string{
		"main":        "main",
		"feature/x y": "feature-x-y",
		"v1.2_rc-3":   "v1.2_rc-3",
		"":            "snapshot",
		"../escape":   "..-escape",
	}
	for in, want := range cases {
		if got := sanitizeLabel(in); got != want {
			t.Errorf("sanitizeLabel(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestSnapshotJSONDeterminism: the same fixture parsed twice must produce
// byte-identical JSON (modulo nothing — no timestamps in the schema).
func TestSnapshotJSONDeterminism(t *testing.T) {
	dir := t.TempDir()
	in := writeFixture(t, dir, "bench.txt", benchFixture)
	read := func(label string) []byte {
		if code, _, stderr := runCLI(t, "run", "-in", in, "-label", label, "-out", dir); code != 0 {
			t.Fatalf("run failed: %s", stderr)
		}
		raw, err := os.ReadFile(filepath.Join(dir, "BENCH_"+label+".json"))
		if err != nil {
			t.Fatal(err)
		}
		// Neutralise the only run-dependent field.
		var m map[string]any
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatal(err)
		}
		delete(m, "label")
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	if a, b := read("one"), read("two"); !bytes.Equal(a, b) {
		t.Errorf("snapshots differ between identical runs:\n%s\n%s", a, b)
	}
}

func TestTimelineSmoke(t *testing.T) {
	dir := t.TempDir()
	code, stdout, stderr := runCLI(t, "timeline",
		"-q", "5", "-m", "2048", "-sample-every", "32", "-windows", "32",
		"-fault-at", "100", "-max-bytes", "2000000", "-parallel", "2",
		"-label", "tl", "-out", dir)
	if code != 0 {
		t.Fatalf("exit %d, want 0; stderr:\n%s", code, stderr)
	}
	for _, want := range []string{"# Telemetry timelines — tl", "## Telemetry timeline — q=5",
		"Cross-check against trace ground truth: **exact match**"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q", want)
		}
	}
	snap := loadSnapshot(t, filepath.Join(dir, "TIMELINE_tl.json"))
	if snap.Kind != perf.KindTimeline || len(snap.Timeline) == 0 {
		t.Fatalf("snapshot kind=%q runs=%d", snap.Kind, len(snap.Timeline))
	}
	if snap.TimelineConfig == nil || snap.TimelineConfig.Q != 5 || snap.TimelineConfig.FaultAt != 100 {
		t.Errorf("timeline config %+v", snap.TimelineConfig)
	}
}

func TestTimelineFootprintGate(t *testing.T) {
	dir := t.TempDir()
	code, _, stderr := runCLI(t, "timeline",
		"-q", "3", "-m", "512", "-sample-every", "32", "-windows", "32",
		"-max-bytes", "1", "-label", "tiny", "-out", dir)
	if code != 1 {
		t.Fatalf("exit %d, want 1 for a 1-byte footprint ceiling", code)
	}
	if !strings.Contains(stderr, "ceiling") {
		t.Errorf("stderr does not mention the footprint ceiling:\n%s", stderr)
	}
}

func TestOverheadCLI(t *testing.T) {
	dir := t.TempDir()
	mkSnap := func(name string, sampledNs int) string {
		fixture := "goos: linux\npkg: polarfly\n" +
			"BenchmarkHotLoop/q=11/single-8 \t 10\t 100000 ns/op\n" +
			"BenchmarkHotLoopSampled/q=11/single-8 \t 10\t " + strconv.Itoa(sampledNs) + " ns/op\nPASS\n"
		in := writeFixture(t, dir, name+".txt", fixture)
		code, _, stderr := runCLI(t, "run", "-in", in, "-label", name, "-out", dir)
		if code != 0 {
			t.Fatalf("run exit %d: %s", code, stderr)
		}
		return filepath.Join(dir, "BENCH_"+name+".json")
	}

	ok := mkSnap("fast", 103000) // 3% overhead
	code, stdout, _ := runCLI(t, "overhead", ok)
	if code != 0 {
		t.Fatalf("exit %d, want 0 for 3%% overhead", code)
	}
	if !strings.Contains(stdout, "HotLoop/q=11/single") || !strings.Contains(stdout, "+3.0%") {
		t.Errorf("overhead table wrong:\n%s", stdout)
	}

	bad := mkSnap("slow", 112000) // 12% overhead
	code, _, stderr := runCLI(t, "overhead", bad)
	if code != 1 {
		t.Fatalf("exit %d, want 1 for 12%% overhead", code)
	}
	if !strings.Contains(stderr, "budget") {
		t.Errorf("stderr does not mention the budget:\n%s", stderr)
	}
	if code, _, _ := runCLI(t, "overhead", "-max", "0.2", bad); code != 0 {
		t.Fatalf("exit %d, want 0 with a 20%% budget", code)
	}

	// A snapshot with no sampled series must fail loudly, not pass silently.
	empty := writeFixture(t, dir, "empty.txt", benchFixture)
	if code, _, _ := runCLI(t, "run", "-in", empty, "-label", "plain", "-out", dir); code != 0 {
		t.Fatal("plain run failed")
	}
	code, _, stderr = runCLI(t, "overhead", filepath.Join(dir, "BENCH_plain.json"))
	if code != 1 || !strings.Contains(stderr, "no base") {
		t.Fatalf("exit %d, stderr %q: want 1 and a no-pairs message", code, stderr)
	}
}

const cycleLoopFixture = `goos: linux
pkg: polarfly/internal/netsim
BenchmarkCycleLoop/q=11/single-8 	 3	 110000000 ns/op	 0 B/op	 0 allocs/op
BenchmarkCycleLoop/q=11/lowdepth-8 	 3	 205000000 ns/op	 0 B/op	 0 allocs/op
PASS
`

const cycleLoopRegressedFixture = `goos: linux
pkg: polarfly/internal/netsim
BenchmarkCycleLoop/q=11/single-8 	 3	 110000000 ns/op	 4096 B/op	 128 allocs/op
PASS
`

// hotcheckModule builds a minimal module for the static half of the gate:
// one hotpath root whose body is provably allocation-free.
func hotcheckModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	writeFixture(t, root, "go.mod", "module hotmod\n\ngo 1.22\n")
	writeFixture(t, root, "hot.go", `package hotmod

//lint:hotpath test root
func Step(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
`)
	return root
}

// TestHotcheck exercises the static-vs-measured cross-check end to end:
// agreement passes, a measured allocation regression fails, and a
// snapshot without the witness benchmark fails rather than passing
// vacuously.
func TestHotcheck(t *testing.T) {
	dir := t.TempDir()
	root := hotcheckModule(t)

	in := writeFixture(t, dir, "bench.txt", cycleLoopFixture)
	if code, _, stderr := runCLI(t, "run", "-in", in, "-label", "clean", "-out", dir); code != 0 {
		t.Fatal(stderr)
	}
	code, stdout, stderr := runCLI(t, "hotcheck", "-root", root, filepath.Join(dir, "BENCH_clean.json"))
	if code != 0 {
		t.Fatalf("clean hotcheck exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "agree") {
		t.Errorf("missing agreement summary:\n%s", stdout)
	}

	in = writeFixture(t, dir, "bench2.txt", cycleLoopRegressedFixture)
	if code, _, stderr := runCLI(t, "run", "-in", in, "-label", "regressed", "-out", dir); code != 0 {
		t.Fatal(stderr)
	}
	code, stdout, stderr = runCLI(t, "hotcheck", "-root", root, filepath.Join(dir, "BENCH_regressed.json"))
	if code != 1 {
		t.Fatalf("regressed hotcheck exit %d, want 1\nstdout:\n%s", code, stdout)
	}
	if !strings.Contains(stderr, "contradict") {
		t.Errorf("missing contradiction report:\n%s", stderr)
	}

	in = writeFixture(t, dir, "bench3.txt", benchFixture)
	if code, _, stderr := runCLI(t, "run", "-in", in, "-label", "nowitness", "-out", dir); code != 0 {
		t.Fatal(stderr)
	}
	code, _, stderr = runCLI(t, "hotcheck", "-root", root, filepath.Join(dir, "BENCH_nowitness.json"))
	if code != 1 {
		t.Fatalf("witness-less hotcheck exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "no benchmark") {
		t.Errorf("missing no-witness diagnostic:\n%s", stderr)
	}
}

// TestHotcheckStaticFailure proves the static half gates independently: a
// module whose hotpath root allocates fails before any snapshot is read.
func TestHotcheckStaticFailure(t *testing.T) {
	root := t.TempDir()
	writeFixture(t, root, "go.mod", "module hotmod\n\ngo 1.22\n")
	writeFixture(t, root, "hot.go", `package hotmod

//lint:hotpath test root
func Step(n int) []int {
	return make([]int, n)
}
`)
	dir := t.TempDir()
	in := writeFixture(t, dir, "bench.txt", cycleLoopFixture)
	if code, _, stderr := runCLI(t, "run", "-in", in, "-label", "ok", "-out", dir); code != 0 {
		t.Fatal(stderr)
	}
	code, _, stderr := runCLI(t, "hotcheck", "-root", root, filepath.Join(dir, "BENCH_ok.json"))
	if code != 1 {
		t.Fatalf("exit %d for allocating hot path, want 1", code)
	}
	if !strings.Contains(stderr, "FAIL static") {
		t.Errorf("missing static failure report:\n%s", stderr)
	}
}
