package main

import (
	"os"
	"path/filepath"
	"testing"
)

// readFile returns the snapshot bytes, failing the test on error.
func readFile(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestScorecardParallelByteIdentical runs the measured-vs-model sweep
// serially and three times with a 4-worker pool: the markdown on stdout
// and the BENCH_*.json snapshot must match byte for byte. Two qs keep
// the flattened (q, embedding) job list longer than the pool so workers
// really do finish out of input order.
func TestScorecardParallelByteIdentical(t *testing.T) {
	dir := t.TempDir()
	// The same label on every run keeps the snapshots comparable byte for
	// byte (the label is embedded in the JSON); each run overwrites the
	// file and the bytes are captured immediately after.
	runOnce := func(parallel string) (string, string, string) {
		code, stdout, stderr := runCLI(t, "scorecard", "-q", "3,5", "-m", "4096",
			"-out", dir, "-label", "det", "-parallel", parallel)
		if code != 0 {
			t.Fatalf("-parallel %s: exit %d, want 0\nstderr: %s", parallel, code, stderr)
		}
		return stdout, stderr, readFile(t, filepath.Join(dir, "BENCH_det.json"))
	}
	serialOut, _, serialSnap := runOnce("1")
	for i := 1; i <= 3; i++ {
		out, _, snap := runOnce("4")
		if out != serialOut {
			t.Fatalf("parallel run %d stdout differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", i, serialOut, out)
		}
		if snap != serialSnap {
			t.Fatalf("parallel run %d snapshot differs from serial", i)
		}
	}
}

// TestScorecardDegradedParallelByteIdentical is the fault-injection
// counterpart: the -degraded sweep fans out across qs and embeddings,
// and its table and snapshot must still match the serial run exactly —
// detection, recovery, and re-issue all happen inside independent jobs.
func TestScorecardDegradedParallelByteIdentical(t *testing.T) {
	dir := t.TempDir()
	runOnce := func(parallel string) (string, string) {
		code, stdout, stderr := runCLI(t, "scorecard", "-degraded", "-q", "3,5",
			"-m", "6144", "-fail-at", "800", "-out", dir, "-label", "ddet", "-parallel", parallel)
		if code != 0 {
			t.Fatalf("-parallel %s: exit %d, want 0\nstderr: %s", parallel, code, stderr)
		}
		return stdout, readFile(t, filepath.Join(dir, "BENCH_ddet.json"))
	}
	serialOut, serialSnap := runOnce("1")
	for i := 1; i <= 3; i++ {
		out, snap := runOnce("4")
		if out != serialOut {
			t.Fatalf("parallel run %d stdout differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", i, serialOut, out)
		}
		if snap != serialSnap {
			t.Fatalf("parallel run %d snapshot differs from serial", i)
		}
	}
}
