package polarfly

import (
	"math"
	"testing"

	"polarfly/internal/workload"
)

func sys(t *testing.T, q int) *System {
	t.Helper()
	s, err := New(q)
	if err != nil {
		t.Fatalf("New(%d): %v", q, err)
	}
	return s
}

func TestNewAndTopologyAccessors(t *testing.T) {
	s := sys(t, 7)
	if s.Q() != 7 || s.Nodes() != 57 || s.Radix() != 8 {
		t.Errorf("q=%d N=%d radix=%d", s.Q(), s.Nodes(), s.Radix())
	}
	links := s.Links()
	if len(links) != 7*8*8/2 {
		t.Errorf("%d links, want %d", len(links), 7*8*8/2)
	}
	quadrics, others := 0, 0
	for v := 0; v < s.Nodes(); v++ {
		switch s.Degree(v) {
		case 7:
			quadrics++
			if s.VertexClass(v) != "W" {
				t.Errorf("degree-7 vertex %d classed %s", v, s.VertexClass(v))
			}
		case 8:
			others++
		default:
			t.Errorf("vertex %d has degree %d", v, s.Degree(v))
		}
	}
	if quadrics != 8 || others != 49 {
		t.Errorf("quadrics=%d others=%d", quadrics, others)
	}
	if _, err := New(6); err == nil {
		t.Error("New(6) should fail")
	}
}

func TestFeasibleRadixes(t *testing.T) {
	got := FeasibleRadixes(3, 12)
	want := []int{3, 4, 5, 6, 8, 9, 10, 12}
	if len(got) != len(want) {
		t.Fatalf("radixes = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("radixes = %v, want %v", got, want)
		}
	}
}

func TestDifferenceSet(t *testing.T) {
	s := sys(t, 3)
	d := s.DifferenceSet()
	want := []int{0, 1, 3, 9}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("D = %v", d)
		}
	}
	// Returned slice is a copy.
	d[0] = 99
	if s.DifferenceSet()[0] != 0 {
		t.Error("DifferenceSet leaks internal state")
	}
}

func TestPlanProperties(t *testing.T) {
	s := sys(t, 5)
	low, err := s.Plan(LowDepth)
	if err != nil {
		t.Fatal(err)
	}
	if len(low.Trees) != 5 || low.MaxDepth > 3 || low.MaxCongestion > 2 {
		t.Errorf("low-depth plan: %+v", low)
	}
	if low.AggregateBandwidth < 2.5-1e-9 || low.AggregateBandwidth > low.OptimalBandwidth+1e-9 {
		t.Errorf("low-depth aggregate %f", low.AggregateBandwidth)
	}
	ham, err := s.Plan(Hamiltonian)
	if err != nil {
		t.Fatal(err)
	}
	if len(ham.Trees) != 3 || ham.MaxCongestion != 1 {
		t.Errorf("hamiltonian plan: %+v", ham)
	}
	if math.Abs(ham.AggregateBandwidth-ham.OptimalBandwidth) > 1e-9 {
		t.Errorf("hamiltonian should be optimal for odd q: %f vs %f",
			ham.AggregateBandwidth, ham.OptimalBandwidth)
	}
	single, err := s.Plan(SingleTree)
	if err != nil {
		t.Fatal(err)
	}
	if len(single.Trees) != 1 || single.AggregateBandwidth != 1.0 {
		t.Errorf("single plan: %+v", single)
	}
	// Tree parent arrays are valid spanning structures.
	for _, tr := range low.Trees {
		if tr.Parent[tr.Root] != -1 {
			t.Error("root parent not -1")
		}
		if len(tr.Parent) != s.Nodes() {
			t.Error("parent array wrong size")
		}
	}
	// Method string round trip.
	if LowDepth.String() != "low-depth" || Hamiltonian.String() != "hamiltonian" || SingleTree.String() != "single-tree" {
		t.Error("Method.String broken")
	}
}

func TestPlanSplitAndPredict(t *testing.T) {
	s := sys(t, 5)
	p, err := s.Plan(Hamiltonian)
	if err != nil {
		t.Fatal(err)
	}
	split, err := p.Split(100)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, x := range split {
		sum += x
	}
	if sum != 100 || len(split) != 3 {
		t.Errorf("split = %v", split)
	}
	if math.Abs(p.PredictCycles(300)-100) > 1e-9 { // 300 elems / 3 B
		t.Errorf("PredictCycles = %f", p.PredictCycles(300))
	}
}

func TestAllreduceEndToEnd(t *testing.T) {
	s := sys(t, 3)
	inputs := workload.Vectors(s.Nodes(), 128, 1000, 99)
	want := Reduce(inputs)
	for _, m := range []Method{SingleTree, LowDepth, Hamiltonian} {
		p, err := s.Plan(m)
		if err != nil {
			t.Fatal(err)
		}
		out, stats, err := s.Allreduce(p, inputs, Options{LinkLatency: 2, VCDepth: 4})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		for k := range want {
			if out[k] != want[k] {
				t.Fatalf("%v: element %d = %d, want %d", m, k, out[k], want[k])
			}
		}
		if stats.Cycles <= 0 || stats.EffectiveBandwidth <= 0 || stats.FlitsSent <= 0 {
			t.Errorf("%v: degenerate stats %+v", m, stats)
		}
	}
}

func TestAllreduceMultiTreeBeatsSingle(t *testing.T) {
	s := sys(t, 5)
	inputs := workload.Vectors(s.Nodes(), 1024, 1000, 5)
	opt := Options{LinkLatency: 3, VCDepth: 6}
	single, _ := s.Plan(SingleTree)
	low, _ := s.Plan(LowDepth)
	_, sStats, err := s.Allreduce(single, inputs, opt)
	if err != nil {
		t.Fatal(err)
	}
	_, lStats, err := s.Allreduce(low, inputs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if speedup := float64(sStats.Cycles) / float64(lStats.Cycles); speedup < 2.0 {
		t.Errorf("low-depth speedup %f < 2 over single tree", speedup)
	}
}

func TestPlanWrongSystemRejected(t *testing.T) {
	a := sys(t, 3)
	b := sys(t, 3)
	p, err := a.Plan(SingleTree)
	if err != nil {
		t.Fatal(err)
	}
	inputs := workload.Vectors(b.Nodes(), 4, 10, 1)
	if _, _, err := b.Allreduce(p, inputs, DefaultOptions()); err == nil {
		t.Error("cross-system plan accepted")
	}
}

func TestHamiltonianPathsAPI(t *testing.T) {
	s := sys(t, 3)
	pairs := s.HamiltonianPairs()
	if len(pairs) != 6 { // φ(13)/2
		t.Errorf("%d pairs, want 6", len(pairs))
	}
	path := s.HamiltonianPath(0, 1)
	if len(path) != 13 {
		t.Errorf("path length %d", len(path))
	}
	seen := map[int]bool{}
	for _, v := range path {
		seen[v] = true
	}
	if len(seen) != 13 {
		t.Error("path not Hamiltonian")
	}
}

func TestEdgeConnectivityFacade(t *testing.T) {
	if got := sys(t, 5).EdgeConnectivity(); got != 5 {
		t.Errorf("λ(ER_5) = %d, want 5", got)
	}
}

func TestEvenQLowDepthUnavailable(t *testing.T) {
	s := sys(t, 4)
	if _, err := s.Plan(LowDepth); err == nil {
		t.Error("even q LowDepth should fail")
	}
	if _, err := s.Plan(Hamiltonian); err != nil {
		t.Errorf("even q Hamiltonian failed: %v", err)
	}
}
