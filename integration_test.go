package polarfly

import (
	"math"
	"testing"

	"polarfly/internal/workload"
)

// TestFullPipelineSweep is the library-level integration test: for every
// odd prime power in range, derive all four plans, check the paper's
// guarantees on each, and run a value-verified Allreduce.
func TestFullPipelineSweep(t *testing.T) {
	qs := []int{3, 5, 7, 9, 11, 13}
	if testing.Short() {
		qs = []int{3, 5}
	}
	for _, q := range qs {
		s := sys(t, q)
		inputs := workload.Vectors(s.Nodes(), 96, 100, int64(q))
		want := Reduce(inputs)
		for _, m := range []Method{SingleTree, LowDepth, Hamiltonian, DepthTwo} {
			p, err := s.Plan(m)
			if err != nil {
				t.Fatalf("q=%d %v: %v", q, m, err)
			}
			// Paper guarantees per method.
			switch m {
			case SingleTree:
				if p.AggregateBandwidth != 1.0 {
					t.Errorf("q=%d single: BW %f", q, p.AggregateBandwidth)
				}
			case LowDepth:
				if p.MaxDepth > 3 || p.MaxCongestion > 2 {
					t.Errorf("q=%d low-depth: depth %d congestion %d", q, p.MaxDepth, p.MaxCongestion)
				}
				if p.AggregateBandwidth < float64(q)/2-1e-9 {
					t.Errorf("q=%d low-depth: BW %f < q/2 (Cor. 7.7)", q, p.AggregateBandwidth)
				}
			case Hamiltonian:
				if p.MaxCongestion != 1 {
					t.Errorf("q=%d hamiltonian: congestion %d", q, p.MaxCongestion)
				}
				if math.Abs(p.AggregateBandwidth-p.OptimalBandwidth) > 1e-9 {
					t.Errorf("q=%d hamiltonian: BW %f ≠ optimal %f (Thm. 7.19)",
						q, p.AggregateBandwidth, p.OptimalBandwidth)
				}
				if p.MaxDepth != (s.Nodes()-1)/2 {
					t.Errorf("q=%d hamiltonian: depth %d (Lemma 7.17)", q, p.MaxDepth)
				}
			case DepthTwo:
				if p.MaxDepth != 2 {
					t.Errorf("q=%d depth-2: depth %d", q, p.MaxDepth)
				}
			}
			if p.AggregateBandwidth > p.OptimalBandwidth+1e-9 {
				t.Errorf("q=%d %v: BW %f above optimal (Cor. 7.1)", q, m, p.AggregateBandwidth)
			}
			out, stats, err := s.Allreduce(p, inputs, Options{LinkLatency: 2, VCDepth: 4})
			if err != nil {
				t.Fatalf("q=%d %v: %v", q, m, err)
			}
			for k := range want {
				if out[k] != want[k] {
					t.Fatalf("q=%d %v: wrong sum", q, m)
				}
			}
			if stats.Cycles <= 0 {
				t.Errorf("q=%d %v: no cycles", q, m)
			}
		}
	}
}

// TestEvenQPipeline covers the even-q path: Hamiltonian and DepthTwo work,
// LowDepth does not.
func TestEvenQPipeline(t *testing.T) {
	for _, q := range []int{2, 4, 8} {
		s := sys(t, q)
		if _, err := s.Plan(LowDepth); err == nil {
			t.Errorf("q=%d: LowDepth should be unavailable", q)
		}
		inputs := workload.Vectors(s.Nodes(), 40, 50, int64(q))
		want := Reduce(inputs)
		for _, m := range []Method{Hamiltonian, DepthTwo} {
			p, err := s.Plan(m)
			if err != nil {
				t.Fatalf("q=%d %v: %v", q, m, err)
			}
			out, _, err := s.Allreduce(p, inputs, Options{LinkLatency: 2, VCDepth: 4})
			if err != nil {
				t.Fatalf("q=%d %v: %v", q, m, err)
			}
			for k := range want {
				if out[k] != want[k] {
					t.Fatalf("q=%d %v: wrong sum", q, m)
				}
			}
		}
	}
}

// TestBandwidthOrderingAcrossMethods confirms the Figure 5a ordering under
// the analytic model: single < depth-2 ≤ low-depth < hamiltonian ≤ optimal
// for odd q ≥ 5.
func TestBandwidthOrderingAcrossMethods(t *testing.T) {
	for _, q := range []int{5, 7, 9, 11} {
		s := sys(t, q)
		single, _ := s.Plan(SingleTree)
		d2, _ := s.Plan(DepthTwo)
		low, _ := s.Plan(LowDepth)
		ham, _ := s.Plan(Hamiltonian)
		if !(single.AggregateBandwidth <= d2.AggregateBandwidth+1e-9) {
			t.Errorf("q=%d: single %f > depth2 %f", q, single.AggregateBandwidth, d2.AggregateBandwidth)
		}
		if !(d2.AggregateBandwidth < low.AggregateBandwidth) {
			t.Errorf("q=%d: depth2 %f ≥ lowdepth %f", q, d2.AggregateBandwidth, low.AggregateBandwidth)
		}
		if !(low.AggregateBandwidth < ham.AggregateBandwidth) {
			t.Errorf("q=%d: lowdepth %f ≥ hamiltonian %f", q, low.AggregateBandwidth, ham.AggregateBandwidth)
		}
		if !(ham.AggregateBandwidth <= ham.OptimalBandwidth+1e-9) {
			t.Errorf("q=%d: hamiltonian above optimal", q)
		}
	}
}
