module polarfly

go 1.22
