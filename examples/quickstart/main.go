// Quickstart: build a PolarFly system, derive both multi-tree Allreduce
// plans, and run a verified in-network Allreduce on the simulated fabric.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"polarfly"
)

func main() {
	// PolarFly exists for every prime-power q; radix = q+1.
	fmt.Println("feasible radixes up to 32:", polarfly.FeasibleRadixes(3, 32))

	// Build the q=11 instance: 133 routers of radix 12.
	sys, err := polarfly.New(11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PolarFly q=11: %d routers, radix %d, %d links\n",
		sys.Nodes(), sys.Radix(), len(sys.Links()))

	// Every router contributes a 4096-element vector.
	const m = 4096
	rng := rand.New(rand.NewSource(1))
	inputs := make([][]int64, sys.Nodes())
	for v := range inputs {
		inputs[v] = make([]int64, m)
		for k := range inputs[v] {
			inputs[v][k] = int64(rng.Intn(1000))
		}
	}

	for _, method := range []polarfly.Method{polarfly.SingleTree, polarfly.LowDepth, polarfly.Hamiltonian} {
		plan, err := sys.Plan(method)
		if err != nil {
			log.Fatal(err)
		}
		out, stats, err := sys.Allreduce(plan, inputs, polarfly.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12v trees=%2d depth=%2d congestion=%d  model=%5.2f B  measured=%5.2f B  cycles=%6d  (checksum %d)\n",
			method, len(plan.Trees), plan.MaxDepth, plan.MaxCongestion,
			plan.AggregateBandwidth, stats.EffectiveBandwidth, stats.Cycles, out[0])
	}
	fmt.Println("\nAll three embeddings returned the identical verified sum. The")
	fmt.Println("low-depth forest runs near its model bandwidth immediately; the")
	fmt.Println("Hamiltonian forest needs much larger vectors to amortise its deep")
	fmt.Println("pipeline (see examples/latencybound for the crossover).")
}
