// mltraining simulates the paper's motivating workload (§1): data-parallel
// training where every step ends with a large gradient Allreduce. It runs
// several optimisation steps over a synthetic integer-quantised gradient
// and reports the end-to-end Allreduce throughput of each embedding —
// demonstrating why the bandwidth-bound ML regime wants the multi-tree
// solutions.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"polarfly"
)

const (
	q        = 9     // 91 workers, radix 10
	gradLen  = 16384 // gradient elements per step
	numSteps = 3     // training steps to simulate
)

func gradients(n, m, step int) [][]int64 {
	out := make([][]int64, n)
	for w := range out {
		rng := rand.New(rand.NewSource(int64(step)*1e6 + int64(w)))
		out[w] = make([]int64, m)
		for k := range out[w] {
			out[w][k] = int64(rng.NormFloat64() * 1000) // quantised gradient
		}
	}
	return out
}

func main() {
	sys, err := polarfly.New(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed training on PolarFly q=%d: %d workers, %d-element gradients\n\n",
		q, sys.Nodes(), gradLen)

	opts := polarfly.Options{LinkLatency: 10, VCDepth: 10}
	for _, method := range []polarfly.Method{polarfly.SingleTree, polarfly.LowDepth, polarfly.Hamiltonian} {
		plan, err := sys.Plan(method)
		if err != nil {
			log.Fatal(err)
		}
		totalCycles := 0
		var finalSum int64
		for step := 0; step < numSteps; step++ {
			grads := gradients(sys.Nodes(), gradLen, step)
			out, stats, err := sys.Allreduce(plan, grads, opts)
			if err != nil {
				log.Fatal(err)
			}
			totalCycles += stats.Cycles
			finalSum = out[0]
		}
		perStep := totalCycles / numSteps
		fmt.Printf("%-12v %2d trees  %7d cycles/step  %6.2f elem/cycle  (last grad[0] sum %d)\n",
			method, len(plan.Trees), perStep,
			float64(gradLen)/float64(perStep), finalSum)
	}

	fmt.Println("\nThe multi-tree embeddings sustain ~q/2 and (q+1)/2 link bandwidths,")
	fmt.Println("cutting per-step gradient synchronisation time by ~5x at radix 10 —")
	fmt.Println("and the factor grows linearly with the radix (Corollary 7.1).")
}
