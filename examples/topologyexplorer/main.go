// topologyexplorer walks through the mathematics behind the library using
// the public API: vertex classes, Singer difference sets, alternating-sum
// Hamiltonian paths, and how the two Allreduce plans use them.
package main

import (
	"fmt"
	"log"

	"polarfly"
)

func main() {
	sys, err := polarfly.New(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PolarFly q=3: N=%d routers of radix ≤ %d\n\n", sys.Nodes(), sys.Radix())

	// Vertex classes (Table 1 of the paper).
	counts := map[string]int{}
	for v := 0; v < sys.Nodes(); v++ {
		counts[sys.VertexClass(v)]++
	}
	fmt.Printf("vertex classes: W=%d quadrics (degree q), V1=%d, V2=%d\n",
		counts["W"], counts["V1"], counts["V2"])

	// The Singer difference set D: the edge (i,j) exists iff (i+j) mod N ∈ D.
	d := sys.DifferenceSet()
	fmt.Printf("Singer difference set over Z_%d: %v\n", sys.Nodes(), d)
	fmt.Println("(Figure 2a of the paper: {0,1,3,9} with reflection points {0,7,8,11})")

	// Every pair of difference elements with gcd(d0−d1, N)=1 generates an
	// alternating-sum Hamiltonian path (Corollary 7.15).
	pairs := sys.HamiltonianPairs()
	fmt.Printf("\n%d Hamiltonian pair(s) = φ(N)/2; the paths of the first two:\n", len(pairs))
	for _, p := range pairs[:2] {
		fmt.Printf("  colours (%d,%d): %v\n", p[0], p[1], sys.HamiltonianPath(p[0], p[1]))
	}

	// The two Allreduce plans.
	for _, method := range []polarfly.Method{polarfly.LowDepth, polarfly.Hamiltonian} {
		plan, err := sys.Plan(method)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%v plan: %d spanning trees, depth %d, congestion %d\n",
			method, len(plan.Trees), plan.MaxDepth, plan.MaxCongestion)
		fmt.Printf("  aggregate bandwidth %.1f of optimal %.1f link bandwidths\n",
			plan.AggregateBandwidth, plan.OptimalBandwidth)
		for i, t := range plan.Trees {
			fmt.Printf("  T_%d rooted at router %d\n", i, t.Root)
		}
	}
}
