// multitenant demonstrates performance isolation from edge-disjoint trees:
// the Hamiltonian forest is split across two tenants with Plan.Subset, and
// each tenant's Allreduce runs at exactly the bandwidth of its own trees —
// the trees share no physical link, so neither job can interfere with the
// other. A congested embedding cannot make this guarantee.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"polarfly"
)

func main() {
	sys, err := polarfly.New(9) // 91 routers, 5 edge-disjoint trees
	if err != nil {
		log.Fatal(err)
	}
	full, err := sys.Plan(polarfly.Hamiltonian)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PolarFly q=9: %d edge-disjoint Hamiltonian trees, %.1f B total\n\n",
		len(full.Trees), full.AggregateBandwidth)

	// Tenant A gets trees {0,1,2}; tenant B gets {3,4}.
	a, err := full.Subset([]int{0, 1, 2})
	if err != nil {
		log.Fatal(err)
	}
	b, err := full.Subset([]int{3, 4})
	if err != nil {
		log.Fatal(err)
	}

	const m = 6000
	rng := rand.New(rand.NewSource(1))
	inputs := func() [][]int64 {
		in := make([][]int64, sys.Nodes())
		for v := range in {
			in[v] = make([]int64, m)
			for k := range in[v] {
				in[v][k] = int64(rng.Intn(100))
			}
		}
		return in
	}

	opts := polarfly.Options{LinkLatency: 5, VCDepth: 10}
	tenants := []struct {
		name string
		plan *polarfly.Plan
	}{
		{"tenant A (3 trees)", a},
		{"tenant B (2 trees)", b},
	}
	for _, t := range tenants {
		name, plan := t.name, t.plan
		_, stats, err := sys.Allreduce(plan, inputs(), opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s %.1f B model, %6d cycles, %.2f elem/cycle\n",
			name, plan.AggregateBandwidth, stats.Cycles, stats.EffectiveBandwidth)
	}

	fmt.Println("\nEach tenant sustains its own trees' bandwidth; because the trees")
	fmt.Println("are edge-disjoint, running both jobs concurrently changes neither")
	fmt.Println("number (see TestTenantIsolationMatchesSoloRun for the concurrent run).")
}
