// transformer simulates layer-by-layer gradient Allreduce for a GPT-style
// decoder stack — the paper's motivating workload (§1 cites GPT-3-scale
// training as the canonical bandwidth-bound Allreduce). During the
// backward pass each layer's gradient becomes ready in turn and is reduced
// across all workers; the example reports per-layer and whole-step
// synchronisation time for the single-tree baseline versus the paper's
// low-depth forest, and demonstrates graceful degradation when a link
// fails mid-training.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"polarfly"
)

const (
	q      = 7  // 57 workers
	layers = 4  // decoder blocks
	dModel = 24 // tiny model: keeps the cycle-level simulation fast
	vocab  = 512
)

// layerSizes mirrors a decoder stack: embedding gradient plus, per block,
// the attention projections (4·d²), the MLP (8·d²) and biases/norms.
func layerSizes() []int {
	sizes := []int{vocab * dModel}
	per := 4*dModel*dModel + 8*dModel*dModel + 9*dModel
	for i := 0; i < layers; i++ {
		sizes = append(sizes, per)
	}
	return sizes
}

func gradients(n, m int, seed int64) [][]int64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]int64, n)
	for w := range out {
		out[w] = make([]int64, m)
		for k := range out[w] {
			out[w][k] = int64(rng.NormFloat64() * 100)
		}
	}
	return out
}

func main() {
	sys, err := polarfly.New(q)
	if err != nil {
		log.Fatal(err)
	}
	sizes := layerSizes()
	total := 0
	for _, s := range sizes {
		total += s
	}
	fmt.Printf("transformer backward pass on PolarFly q=%d (%d workers)\n", q, sys.Nodes())
	fmt.Printf("%d gradient tensors, %d elements total\n\n", len(sizes), total)

	opts := polarfly.Options{LinkLatency: 10, VCDepth: 10}
	for _, method := range []polarfly.Method{polarfly.SingleTree, polarfly.LowDepth} {
		plan, err := sys.Plan(method)
		if err != nil {
			log.Fatal(err)
		}
		stepCycles := 0
		for li, m := range sizes {
			grads := gradients(sys.Nodes(), m, int64(li))
			_, stats, err := sys.Allreduce(plan, grads, opts)
			if err != nil {
				log.Fatal(err)
			}
			stepCycles += stats.Cycles
			if method == polarfly.LowDepth {
				fmt.Printf("  layer %d (%6d elems): %6d cycles (%.2f elem/cycle)\n",
					li, m, stats.Cycles, stats.EffectiveBandwidth)
			}
		}
		fmt.Printf("%-12v whole-step gradient sync: %d cycles\n\n", method, stepCycles)
	}

	// A link fails mid-training: drop the affected trees and keep going.
	plan, _ := sys.Plan(polarfly.LowDepth)
	tr := plan.Trees[0]
	var failed [2]int
	for v, p := range tr.Parent {
		if p >= 0 {
			failed = [2]int{v, p}
			break
		}
	}
	degraded, err := plan.WithoutLinks([][2]int{failed})
	if err != nil {
		log.Fatal(err)
	}
	grads := gradients(sys.Nodes(), sizes[1], 99)
	_, before, _ := sys.Allreduce(plan, grads, opts)
	_, after, err := sys.Allreduce(degraded, grads, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("link (%d,%d) failed: %d → %d trees, layer sync %d → %d cycles (still correct)\n",
		failed[0], failed[1], len(plan.Trees), len(degraded.Trees), before.Cycles, after.Cycles)
}
