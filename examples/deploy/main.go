// deploy walks the deployment pipeline: plan an embedding, lower it to
// per-router port/VC configurations (what a real in-network fabric would
// be programmed with, §4.4 of the paper), export the tree set as JSON, and
// re-import it into an executable plan — demonstrating that the artifacts
// this library produces are complete enough to drive external tooling.
package main

import (
	"bytes"
	"fmt"
	"log"

	"polarfly"
)

func main() {
	sys, err := polarfly.New(7)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := sys.Plan(polarfly.LowDepth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planned %v embedding on PolarFly q=7: %d trees, %.1f B aggregate\n\n",
		plan.Method, len(plan.Trees), plan.AggregateBandwidth)

	// 1. Router configurations: the per-router programming tables.
	cfgs, err := sys.RouterConfigs(plan)
	if err != nil {
		log.Fatal(err)
	}
	maxVC := 0
	internalRoles := 0
	for _, c := range cfgs {
		for _, tc := range c.Trees {
			if tc.Tree == "internal" {
				internalRoles++
			}
			for _, st := range tc.ReduceIn {
				if st.VC+1 > maxVC {
					maxVC = st.VC + 1
				}
			}
		}
	}
	fmt.Printf("router configs: %d routers, %d internal (tree,router) roles, %d VC(s)/direction/class needed\n",
		len(cfgs), internalRoles, maxVC)
	r0 := cfgs[0]
	fmt.Printf("router 0 wiring for tree 0: role=%s", r0.Trees[0].Tree)
	if r0.Trees[0].ReduceOut != nil {
		fmt.Printf(", partial sums leave on port %d (→ router %d)",
			r0.Trees[0].ReduceOut.Port, r0.Ports[r0.Trees[0].ReduceOut.Port])
	}
	fmt.Println()

	// 2. Export the tree set for external tooling.
	var buf bytes.Buffer
	if err := sys.ExportPlan(&buf, plan); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexported forest: %d bytes of versioned JSON\n", buf.Len())

	// 3. Re-import and rebuild a working plan.
	ts, kind, err := sys.ImportForest(&buf)
	if err != nil {
		log.Fatal(err)
	}
	rebuilt, err := sys.PlanFromTrees(polarfly.LowDepth, ts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-imported %q: %d trees, %.1f B aggregate — identical plan\n",
		kind, len(rebuilt.Trees), rebuilt.AggregateBandwidth)

	// 4. Prove the rebuilt plan still computes.
	inputs := make([][]int64, sys.Nodes())
	for v := range inputs {
		inputs[v] = []int64{int64(v)}
	}
	out, _, err := sys.Allreduce(rebuilt, inputs, polarfly.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verification allreduce over router ids: Σ = %d (expected %d)\n",
		out[0], sys.Nodes()*(sys.Nodes()-1)/2)
}
