// latencybound explores the HPC regime of §1: short-vector Allreduce where
// completion time is dominated by tree depth rather than bandwidth. It
// sweeps the vector length and locates the crossover between the depth-3
// low-depth forest and the depth-(N−1)/2 Hamiltonian forest — the
// latency/bandwidth trade-off of Figure 5.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"polarfly"
)

func main() {
	const q = 7 // 57 routers
	sys, err := polarfly.New(q)
	if err != nil {
		log.Fatal(err)
	}
	low, err := sys.Plan(polarfly.LowDepth)
	if err != nil {
		log.Fatal(err)
	}
	ham, err := sys.Plan(polarfly.Hamiltonian)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PolarFly q=%d: low-depth trees have depth %d; Hamiltonian trees depth %d\n\n",
		q, low.MaxDepth, ham.MaxDepth)
	fmt.Printf("%8s %16s %16s %10s\n", "m", "low-depth (cyc)", "hamiltonian (cyc)", "winner")

	opts := polarfly.Options{LinkLatency: 20, VCDepth: 20} // long links: latency matters
	rng := rand.New(rand.NewSource(7))
	for _, m := range []int{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536} {
		inputs := make([][]int64, sys.Nodes())
		for v := range inputs {
			inputs[v] = make([]int64, m)
			for k := range inputs[v] {
				inputs[v][k] = int64(rng.Intn(100))
			}
		}
		_, ls, err := sys.Allreduce(low, inputs, opts)
		if err != nil {
			log.Fatal(err)
		}
		_, hs, err := sys.Allreduce(ham, inputs, opts)
		if err != nil {
			log.Fatal(err)
		}
		winner := "low-depth"
		if hs.Cycles < ls.Cycles {
			winner = "hamiltonian"
		}
		fmt.Printf("%8d %16d %16d %10s\n", m, ls.Cycles, hs.Cycles, winner)
	}

	fmt.Println("\nSmall vectors favour the depth-3 trees (latency-bound); very large")
	fmt.Println("vectors favour the congestion-free Hamiltonian forest whose aggregate")
	fmt.Println("bandwidth is optimal — exactly the trade-off of §7.3 / Figure 5.")
}
