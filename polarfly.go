// Package polarfly is a library for high-bandwidth in-network Allreduce on
// the PolarFly network topology, reproducing "In-network Allreduce with
// Multiple Spanning Trees on PolarFly" (Lakhotia, Isham, Monroe, Besta,
// Hoefler, Petrini — SPAA 2023).
//
// PolarFly is the diameter-2 topology built from Erdős–Rényi polarity
// graphs ER_q: for any prime power q it connects N = q²+q+1 routers of
// radix q+1. The paper's contribution — and this library's purpose — is a
// pair of multi-spanning-tree Allreduce embeddings that raise aggregate
// Allreduce bandwidth from one link bandwidth (the single-tree state of
// the art) to nearly the optimal (q+1)/2 link bandwidths:
//
//   - the low-depth solution (Algorithm 3): q trees of depth ≤ 3 with link
//     congestion ≤ 2 and aggregate bandwidth ≥ qB/2 — minimal latency;
//   - the Hamiltonian solution (§7.2): ⌊(q+1)/2⌋ edge-disjoint Hamiltonian
//     paths derived from Singer difference sets — zero congestion, optimal
//     bandwidth for odd q, minimal router state.
//
// # Quick start
//
//	sys, _ := polarfly.New(11)                  // 133 routers, radix 12
//	plan, _ := sys.Plan(polarfly.LowDepth)      // 11 trees, depth ≤ 3
//	out, stats, _ := sys.Allreduce(plan, inputs, polarfly.DefaultOptions())
//
// Allreduce executes on a cycle-accurate simulation of the in-network
// reduction fabric (virtual channels, credit flow control, pipelined
// reduction engines) and returns the verified element-wise sum together
// with performance counters. PredictBandwidth evaluates the paper's
// analytic congestion model (Algorithm 1) without simulating.
package polarfly

import (
	"fmt"
	"sync"

	"polarfly/internal/bandwidth"
	"polarfly/internal/core"
	"polarfly/internal/netsim"
	"polarfly/internal/numtheory"
	"polarfly/internal/routing"
	"polarfly/internal/singer"
)

// System is one PolarFly network instance.
type System struct {
	inst *core.Instance

	routesOnce sync.Once
	routes     *routing.Table
}

// New constructs the PolarFly system of order q. q must be a prime power;
// use FeasibleRadixes to enumerate valid design points.
func New(q int) (*System, error) {
	inst, err := core.NewInstance(q)
	if err != nil {
		return nil, err
	}
	return &System{inst: inst}, nil
}

// FeasibleRadixes lists the router radixes r = q+1 (q prime power) with
// lo ≤ r ≤ hi for which a PolarFly exists.
func FeasibleRadixes(lo, hi int) []int {
	var out []int
	for _, q := range numtheory.PrimePowersUpTo(lo-1, hi-1) {
		out = append(out, q+1)
	}
	return out
}

// Q returns the prime power order of the instance.
func (s *System) Q() int { return s.inst.Q }

// Nodes returns the router count N = q²+q+1.
func (s *System) Nodes() int { return s.inst.N() }

// Radix returns the router radix q+1.
func (s *System) Radix() int { return s.inst.Radix() }

// Links returns every undirected link as a canonical (u, v) pair, u < v.
// PolarFly has q(q+1)²/2 links.
func (s *System) Links() [][2]int {
	es := s.inst.ER.G.Edges()
	out := make([][2]int, len(es))
	for i, e := range es {
		out[i] = [2]int{e.U, e.V}
	}
	return out
}

// Degree returns the radix of router v: q for the q+1 quadric routers,
// q+1 for the rest.
func (s *System) Degree(v int) int { return s.inst.ER.G.Degree(v) }

// VertexClass returns "W", "V1" or "V2" — the quadric classification of
// §6.1 that drives the low-depth tree construction.
func (s *System) VertexClass(v int) string { return s.inst.ER.Type(v).String() }

// DifferenceSet returns the Singer difference set underlying the
// Hamiltonian solution (sorted; the paper's Figure 2 values for q=3,4).
func (s *System) DifferenceSet() []int {
	return append([]int(nil), s.inst.Singer.D...)
}

// Neighbors returns router v's directly connected routers in ascending
// order.
func (s *System) Neighbors(v int) []int { return s.inst.ER.G.Neighbors(v) }

// Path returns the deterministic minimal routing path from u to v,
// inclusive of both endpoints. On PolarFly the path has at most 2 hops and
// is unique for non-adjacent routers (Theorem 6.1).
func (s *System) Path(u, v int) []int {
	s.routesOnce.Do(func() { s.routes = routing.New(s.inst.ER.G) })
	return s.routes.Path(u, v)
}

// IsQuadric reports whether router v is one of the q+1 self-orthogonal
// quadric routers (degree q instead of q+1).
func (s *System) IsQuadric(v int) bool { return s.VertexClass(v) == "W" }

// EdgeConnectivity returns λ(ER_q) = q, computed by max-flow: the number
// of link failures needed to disconnect the network, and via
// Nash-Williams–Tutte a lower bound of ⌊q/2⌋ on edge-disjoint spanning
// trees (the Hamiltonian plan achieves the ⌊(q+1)/2⌋ edge-count optimum).
// Cost grows with N²·M; intended for analysis, not hot paths.
func (s *System) EdgeConnectivity() int { return s.inst.ER.G.EdgeConnectivity() }

// Method selects an Allreduce embedding.
type Method int

const (
	// SingleTree embeds one BFS spanning tree — the conventional
	// in-network baseline, bandwidth-capped at one link.
	SingleTree Method = iota
	// LowDepth embeds the Algorithm 3 forest: q trees of depth ≤ 3 with
	// congestion ≤ 2. Requires odd q.
	LowDepth
	// Hamiltonian embeds ⌊(q+1)/2⌋ edge-disjoint Hamiltonian-path trees —
	// zero congestion at depth (N−1)/2.
	Hamiltonian
	// DepthTwo embeds q forced depth-2 BFS trees (unique on PolarFly by
	// Theorem 6.1). Lowest latency, but congestion grows with the tree
	// count, so aggregate bandwidth stalls — included as the natural
	// alternative the paper's depth-3 trees outperform, and as a
	// best-effort multi-tree plan for even q.
	DepthTwo
)

func (m Method) String() string {
	return core.EmbeddingKind(m).String()
}

// Tree is one embedded Allreduce spanning tree in parent-array form.
// Reduction traffic flows from each vertex to Parent[vertex]; the root
// (Parent == -1) holds the full reduction and broadcasts it back down.
type Tree struct {
	Root   int
	Parent []int
	Depth  int
}

// Plan is a ready-to-execute multi-tree Allreduce embedding together with
// its analytic performance model.
type Plan struct {
	// Method that produced the plan.
	Method Method
	// Trees are the embedded spanning trees.
	Trees []Tree
	// PerTreeBandwidth[i] is the Algorithm 1 bandwidth share of tree i at
	// unit link bandwidth.
	PerTreeBandwidth []float64
	// AggregateBandwidth is the achievable Allreduce bandwidth in link
	// bandwidths (Theorem 5.1).
	AggregateBandwidth float64
	// OptimalBandwidth is (q+1)/2, the Corollary 7.1 bound.
	OptimalBandwidth float64
	// MaxCongestion is the worst-case number of trees sharing a link.
	MaxCongestion int
	// MaxDepth is the deepest tree (latency proxy).
	MaxDepth int

	emb *core.Embedding
	sys *System
}

// Plan derives the embedding for the requested method and evaluates the
// paper's bandwidth model on it.
func (s *System) Plan(m Method) (*Plan, error) {
	emb, err := s.inst.Embed(core.EmbeddingKind(m))
	if err != nil {
		return nil, err
	}
	p := &Plan{
		Method:             m,
		PerTreeBandwidth:   emb.Model.PerTree,
		AggregateBandwidth: emb.Model.Aggregate,
		OptimalBandwidth:   bandwidth.Optimal(s.inst.Q, 1.0),
		MaxCongestion:      emb.Model.MaxCongestion,
		MaxDepth:           emb.MaxDepth,
		emb:                emb,
		sys:                s,
	}
	for _, t := range emb.Forest {
		p.Trees = append(p.Trees, Tree{Root: t.Root, Parent: append([]int(nil), t.Parent...), Depth: t.MaxDepth()})
	}
	return p, nil
}

// Split distributes an m-element vector across the plan's trees in
// proportion to their bandwidth (Theorem 5.1, Equation 2).
func (p *Plan) Split(m int) ([]int, error) {
	return bandwidth.SubvectorSplit(m, p.PerTreeBandwidth)
}

// PredictCycles returns the modelled Allreduce time in cycles for an
// m-element vector, excluding pipeline-fill latency: m / ΣB_i at one
// element per cycle per link (Equation 3).
func (p *Plan) PredictCycles(m int) float64 {
	return float64(m) / p.AggregateBandwidth
}

// Options configures the simulated fabric.
type Options struct {
	// LinkLatency is the link pipeline depth in cycles.
	LinkLatency int
	// VCDepth is the per-virtual-channel buffer in flits.
	VCDepth int
}

// DefaultOptions returns the default fabric point (10-cycle links, buffers
// equal to the latency-bandwidth product).
func DefaultOptions() Options { return Options{LinkLatency: 10, VCDepth: 10} }

// Stats reports a simulated Allreduce execution.
type Stats struct {
	// Cycles is the simulated completion time.
	Cycles int
	// ModelCycles is the analytic prediction (bandwidth term only).
	ModelCycles float64
	// EffectiveBandwidth is m/Cycles in elements per cycle.
	EffectiveBandwidth float64
	// Split is the sub-vector assignment used.
	Split []int
	// FlitsSent and PeakBufferFlits are fabric counters.
	FlitsSent       int
	PeakBufferFlits int
}

// Allreduce executes an in-network Allreduce of the input vectors — one
// equal-length vector per router — on the cycle-accurate fabric simulator,
// and returns the reduced vector (identical at every router, and verified
// against the exact element-wise sum before returning) plus execution
// statistics.
func (s *System) Allreduce(p *Plan, inputs [][]int64, opt Options) ([]int64, *Stats, error) {
	if p.sys != s {
		return nil, nil, fmt.Errorf("polarfly: plan belongs to a different system")
	}
	res, err := s.inst.Allreduce(p.emb, inputs, netsim.Config{LinkLatency: opt.LinkLatency, VCDepth: opt.VCDepth})
	if err != nil {
		return nil, nil, err
	}
	want := netsim.ExpectedOutput(inputs)
	for v := range res.Outputs {
		for k := range want {
			if res.Outputs[v][k] != want[k] {
				return nil, nil, fmt.Errorf("polarfly: internal error: node %d element %d reduced to %d, want %d",
					v, k, res.Outputs[v][k], want[k])
			}
		}
	}
	m := len(want)
	st := &Stats{
		Cycles:          res.Cycles,
		ModelCycles:     res.ModelCycles,
		Split:           res.Split,
		FlitsSent:       res.FlitsSent,
		PeakBufferFlits: res.PeakBufferFlits,
	}
	if res.Cycles > 0 {
		st.EffectiveBandwidth = float64(m) / float64(res.Cycles)
	}
	return want, st, nil
}

// Reduce computes the element-wise sum of the inputs directly (no
// simulation) — the reference result Allreduce must reproduce.
func Reduce(inputs [][]int64) []int64 {
	return netsim.ExpectedOutput(inputs)
}

// HamiltonianPairs returns the difference-element pairs (d0, d1) whose
// alternating-sum paths are Hamiltonian — there are φ(N)/2 of them
// (Corollary 7.20).
func (s *System) HamiltonianPairs() [][2]int {
	var out [][2]int
	for _, p := range s.inst.Singer.HamiltonianPairs() {
		out = append(out, [2]int{p.D0, p.D1})
	}
	return out
}

// HamiltonianPath materialises the unique maximal alternating-sum path for
// a difference-element pair (Corollary 7.15). The result is a Hamiltonian
// vertex sequence iff gcd(d0−d1, N) = 1.
func (s *System) HamiltonianPath(d0, d1 int) []int {
	return s.inst.Singer.MaximalPath(singer.Pair{D0: d0, D1: d1})
}
