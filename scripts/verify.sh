#!/bin/sh
# verify.sh — the pre-commit gate: vet, build, race-enabled tests for the
# simulator and telemetry layers, then the full suite (tier 1).
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./internal/netsim ./internal/obsv"
go test -race ./internal/netsim ./internal/obsv

echo "== go test ./..."
go test ./...

echo "verify: OK"
