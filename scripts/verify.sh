#!/bin/sh
# verify.sh — the pre-commit gate: vet, build, repolint (the project's
# static-analysis suite), race-enabled tests for the concurrency-bearing
# packages, then the full suite (tier 1).
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt -l"
unformatted=$(gofmt -l cmd internal)
if [ -n "$unformatted" ]; then
    echo "verify: FAIL: gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== repolint ./..."
go run ./cmd/repolint ./...

echo "== repolint selfcheck (bad fixtures fail, clean fixtures pass)"
./scripts/selfcheck.sh

echo "== go test -race -count=1 ./internal/netsim ./internal/faults ./internal/obsv ./internal/core ./internal/collectives ./internal/parrun ./internal/tsdb ./internal/critpath ./internal/chaos"
go test -race -count=1 ./internal/netsim ./internal/faults ./internal/obsv ./internal/core ./internal/collectives ./internal/parrun ./internal/tsdb ./internal/critpath ./internal/chaos

echo "== go test -shuffle=on ./..."
go test -shuffle=on ./...

echo "== bench smoke (benchreport run, 1 iteration per benchmark)"
go run ./cmd/benchreport run -label smoke -count 1 -benchtime 1x >/dev/null

echo "== hotcheck (static alloc-free proof vs measured allocs/op)"
go run ./cmd/benchreport hotcheck -root . BENCH_smoke.json

echo "== scorecard smoke (measured-vs-model gate at q=3)"
go run ./cmd/benchreport scorecard -q 3 -m 4096 -label scorecard-smoke >/dev/null

echo "== parallel scorecard smoke (ordered-commit pool must match serial bytes)"
pardir=$(mktemp -d)
go run ./cmd/benchreport scorecard -q 3 -m 4096 -label scorecard-smoke -parallel 4 -out "$pardir" >/dev/null
if ! cmp -s BENCH_scorecard-smoke.json "$pardir/BENCH_scorecard-smoke.json"; then
    echo "verify: FAIL: -parallel 4 scorecard differs from serial" >&2
    rm -rf "$pardir"
    exit 1
fi
rm -rf "$pardir"

echo "== degraded scorecard (fault-injection recovery vs core.Degrade, q=7)"
go run ./cmd/benchreport scorecard -degraded -q 7 -label degraded-smoke >/dev/null

echo "== critical-path smoke (exact blame conservation gate, q=3)"
cpdir=$(mktemp -d)
go run ./cmd/benchreport critpath -q 3 -m 2048 -fail-at 300 -label critpath-smoke -out "$cpdir" >/dev/null
rm -rf "$cpdir"

echo "== chaos campaign smoke (invariant-checked fault-space exploration, q=5)"
camdir=$(mktemp -d)
go run ./cmd/benchreport campaign -q 5 -runs 8 -m 1024 -label campaign-smoke -out "$camdir" >/dev/null
rm -rf "$camdir"

echo "== telemetry timeline smoke (tsdb sampler/analyzer gate + trace cross-check, q=5)"
tldir=$(mktemp -d)
go run ./cmd/benchreport timeline -q 5 -m 4096 -sample-every 32 -windows 32 \
    -fault-at 100 -max-bytes 2000000 -label timeline-smoke -out "$tldir" >/dev/null
rm -rf "$tldir"

echo "verify: OK"
