#!/bin/sh
# selfcheck.sh — the static-analysis suite checked against its own
# fixtures at the CLI level: every analyzer's bad fixture must exit 1
# with at least one diagnostic naming that analyzer, and every clean
# fixture must exit 0 under the FULL suite (not just its own analyzer).
# This complements the in-process fixture tests in internal/analysis by
# exercising argument parsing, module loading and exit-code mapping
# exactly the way CI's `make lint` does.
set -u
cd "$(dirname "$0")/.."

bindir=$(mktemp -d)
trap 'rm -rf "$bindir"' EXIT
go build -o "$bindir/repolint" ./cmd/repolint || exit 2

fail=0
count=0
for dir in internal/analysis/testdata/*/; do
    name=$(basename "$dir")
    count=$((count + 1))

    out=$("$bindir/repolint" "./${dir}bad" 2>&1)
    code=$?
    if [ "$code" -ne 1 ]; then
        echo "selfcheck: FAIL: $name/bad exited $code, want 1" >&2
        printf '%s\n' "$out" >&2
        fail=1
    elif ! printf '%s' "$out" | grep -q "\[$name\]"; then
        echo "selfcheck: FAIL: $name/bad produced no [$name] diagnostic" >&2
        printf '%s\n' "$out" >&2
        fail=1
    fi

    out=$("$bindir/repolint" "./${dir}clean" 2>&1)
    code=$?
    if [ "$code" -ne 0 ]; then
        echo "selfcheck: FAIL: $name/clean exited $code, want 0" >&2
        printf '%s\n' "$out" >&2
        fail=1
    fi
done

[ "$fail" -eq 0 ] || exit 1
echo "selfcheck: OK ($count analyzers, bad and clean fixtures)"
