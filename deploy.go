package polarfly

// This file exposes the deployment surface of a plan: the per-router
// configuration tables (§4.4's port/engine/VC programming) and JSON
// export/import of the tree sets, so plans computed by this library can be
// pushed to external tooling and re-imported losslessly.

import (
	"bytes"
	"fmt"
	"io"

	"polarfly/internal/bandwidth"
	"polarfly/internal/core"
	"polarfly/internal/routercfg"
	"polarfly/internal/serialize"
	"polarfly/internal/trees"
)

// PortStream describes one logical stream on a router port.
type PortStream struct {
	// Tree is the plan-local tree index.
	Tree int
	// Port is the local port number; Ports in RouterConfig maps it to the
	// neighbor router.
	Port int
	// VC is the virtual-channel index within the stream's class
	// (reduction and broadcast are separate classes).
	VC int
}

// RouterTreeConfig is a router's role and port wiring for one tree.
type RouterTreeConfig struct {
	Tree string // "leaf" | "internal" | "root"
	// ReduceIn lists streams feeding the reduction engine; ReduceOut is
	// the upstream output (nil at the root).
	ReduceIn  []PortStream
	ReduceOut *PortStream
	// BcastIn is the broadcast source (nil at the root); BcastOut lists
	// the replication outputs.
	BcastIn  *PortStream
	BcastOut []PortStream
}

// RouterConfig is the complete per-router programming derived from a plan.
type RouterConfig struct {
	Router int
	// Ports[i] is the neighbor router reached through port i.
	Ports []int
	// Trees holds one entry per plan tree.
	Trees []RouterTreeConfig
}

// RouterConfigs lowers the plan to per-router configurations. The result
// is validated internally before being returned: every parent/child
// relation maps to matching ports and every reduction input sits on a
// distinct port. For the paper's forests at most one virtual channel per
// (link direction, traffic class) is ever needed (Lemma 7.8).
func (s *System) RouterConfigs(p *Plan) ([]RouterConfig, error) {
	if p.sys != s {
		return nil, fmt.Errorf("polarfly: plan belongs to a different system")
	}
	cfgs, err := routercfg.Build(p.emb.Topology, p.emb.Forest)
	if err != nil {
		return nil, err
	}
	if err := routercfg.Validate(p.emb.Topology, p.emb.Forest, cfgs); err != nil {
		return nil, fmt.Errorf("polarfly: internal error: %w", err)
	}
	out := make([]RouterConfig, len(cfgs))
	for i, c := range cfgs {
		rc := RouterConfig{Router: c.Router, Ports: append([]int(nil), c.Ports...)}
		for _, tc := range c.Trees {
			rtc := RouterTreeConfig{Tree: tc.Role.String()}
			for _, st := range tc.ReduceIn {
				rtc.ReduceIn = append(rtc.ReduceIn, PortStream{Tree: st.Tree, Port: st.Port, VC: st.VCIndex})
			}
			if tc.ReduceOut != nil {
				rtc.ReduceOut = &PortStream{Tree: tc.ReduceOut.Tree, Port: tc.ReduceOut.Port, VC: tc.ReduceOut.VCIndex}
			}
			if tc.BcastIn != nil {
				rtc.BcastIn = &PortStream{Tree: tc.BcastIn.Tree, Port: tc.BcastIn.Port, VC: tc.BcastIn.VCIndex}
			}
			for _, st := range tc.BcastOut {
				rtc.BcastOut = append(rtc.BcastOut, PortStream{Tree: st.Tree, Port: st.Port, VC: st.VCIndex})
			}
			rc.Trees = append(rc.Trees, rtc)
		}
		out[i] = rc
	}
	return out, nil
}

// ExportPlan writes the plan's tree set as versioned JSON.
func (s *System) ExportPlan(w io.Writer, p *Plan) error {
	if p.sys != s {
		return fmt.Errorf("polarfly: plan belongs to a different system")
	}
	return serialize.EncodeForest(w, p.emb.Forest, p.Method.String(), s.Q())
}

// ExportTopology writes the network's link list as versioned JSON.
func (s *System) ExportTopology(w io.Writer) error {
	return serialize.EncodeTopology(w, s.inst.ER.G, s.Q())
}

// ImportForest reads a forest document previously produced by ExportPlan
// and returns the validated trees in parent-array form, checking that each
// spans this system's topology. Hamiltonian plans are labelled in the
// Singer construction's vertex numbering (isomorphic to the projective
// one, Theorem 6.6), so validation accepts either labelling.
func (s *System) ImportForest(r io.Reader) ([]Tree, string, error) {
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, r); err != nil {
		return nil, "", err
	}
	forest, kind, err := serialize.DecodeForest(bytes.NewReader(buf.Bytes()), s.inst.ER.G)
	if err != nil {
		var errSinger error
		forest, kind, errSinger = serialize.DecodeForest(bytes.NewReader(buf.Bytes()), s.inst.Singer.Topology())
		if errSinger != nil {
			return nil, "", err
		}
	}
	out := make([]Tree, 0, len(forest))
	for _, t := range forest {
		out = append(out, Tree{Root: t.Root, Parent: append([]int(nil), t.Parent...), Depth: t.MaxDepth()})
	}
	return out, kind, nil
}

// forestFromPublic converts public parent-array trees back to the internal
// representation (validating structure).
func forestFromPublic(ts []Tree) ([]*trees.Tree, error) {
	out := make([]*trees.Tree, 0, len(ts))
	for i, t := range ts {
		tt, err := trees.FromParent(t.Root, t.Parent)
		if err != nil {
			return nil, fmt.Errorf("polarfly: tree %d: %w", i, err)
		}
		out = append(out, tt)
	}
	return out, nil
}

// PlanFromTrees builds an executable plan from externally supplied trees
// (for example re-imported via ImportForest, or produced by other tooling).
// Every tree must be a spanning tree of this system's topology in either
// the projective or the Singer labelling; the bandwidth model is evaluated
// on the supplied forest. The method label records how the plan was made.
func (s *System) PlanFromTrees(method Method, ts []Tree) (*Plan, error) {
	if len(ts) == 0 {
		return nil, fmt.Errorf("polarfly: empty forest")
	}
	forest, err := forestFromPublic(ts)
	if err != nil {
		return nil, err
	}
	topo := s.inst.ER.G
	valid := true
	for _, t := range forest {
		if t.ValidateSpanning(topo) != nil {
			valid = false
			break
		}
	}
	if !valid {
		topo = s.inst.Singer.Topology()
		for i, t := range forest {
			if err := t.ValidateSpanning(topo); err != nil {
				return nil, fmt.Errorf("polarfly: tree %d spans neither labelling: %w", i, err)
			}
		}
	}
	emb := &core.Embedding{Kind: core.EmbeddingKind(method), Forest: forest, Topology: topo}
	emb.Model = bandwidth.ForForest(forest, 1.0)
	for _, t := range forest {
		if d := t.MaxDepth(); d > emb.MaxDepth {
			emb.MaxDepth = d
		}
	}
	p := &Plan{
		Method:             method,
		PerTreeBandwidth:   emb.Model.PerTree,
		AggregateBandwidth: emb.Model.Aggregate,
		OptimalBandwidth:   bandwidth.Optimal(s.Q(), 1.0),
		MaxCongestion:      emb.Model.MaxCongestion,
		MaxDepth:           emb.MaxDepth,
		emb:                emb,
		sys:                s,
	}
	for _, t := range forest {
		p.Trees = append(p.Trees, Tree{Root: t.Root, Parent: append([]int(nil), t.Parent...), Depth: t.MaxDepth()})
	}
	return p, nil
}
